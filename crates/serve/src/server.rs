//! The fill server: accept loop, per-connection protocol loop, and the
//! request engine composing the [`FairPool`] scheduler with the design
//! and context caches.
//!
//! ## Serving path of a fill request
//!
//! 1. *Resolve* the design reference — parse an inline design, look a
//!    hash up in the design store, or apply edit ops to a cached base.
//! 2. *Check out* the `(design name, config)` context entry from the
//!    LRU. Hash match → warm; hash mismatch → `rebuild` (incremental or
//!    full); miss → cold `build`. Builds and rebuilds run as exclusive
//!    turns on the fair scheduler.
//! 3. *Solve* only the tiles without cached counts, as fair-share
//!    batches interleaved with other in-flight requests; everything
//!    else replays cached per-tile counts — bit-identical by the
//!    per-tile seeding invariant.
//! 4. *Assemble* the outcome and check the context (plus the solved
//!    counts) back in.
//!
//! Admission control lives in the scheduler: when too many requests are
//! in flight, submissions fail fast and the client sees a `Busy` reply
//! instead of unbounded queueing. Density and verify requests run as
//! exclusive scheduler turns, so they are governed by the same
//! `max_inflight` bound as fills — no request type bypasses admission.
//! The accept loop itself is bounded too: beyond `max_conns` live
//! connections, new ones are turned away with an immediate `Busy`
//! reply, and finished connection threads are reaped every accept pass.
//! A per-connection watcher thread peeks
//! the socket and raises an abort flag when the client disconnects, so
//! a dead client's tile batches stop at the next batch boundary instead
//! of running (and blocking the pool) to completion.

use crate::cache::{CtxCache, CtxEntry, DesignStore, SolvedTiles};
use crate::net::{Listener, Stream};
use crate::protocol::{
    apply_edits, decode_request, design_hash, edit_hash, encode_outcome_blob, encode_reply,
    write_frame, DesignKey, DesignRef, FillParams, FillStatus, FrameProgress, FrameReader, Reply,
    Request, ERR_ABORTED, ERR_DESIGN, ERR_FLOW, ERR_PROTOCOL, ERR_UNKNOWN_DESIGN,
};
use pilfill_core::flow::{FlowConfig, FlowContext, RebuildDirt};
use pilfill_core::methods::{DpExact, FillMethod, GreedyFill, IlpOne, IlpTwo, NormalFill};
use pilfill_core::{check_fill, FillFeature};
use pilfill_density::{DensityMap, FixedDissection};
use pilfill_exec::{FairError, FairOptions, FairPool};
use pilfill_layout::{Design, LayerId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Placement methods by wire index (see
/// [`crate::protocol::METHOD_NAMES`]).
const METHODS: [&(dyn FillMethod + Sync); 5] =
    [&NormalFill, &GreedyFill, &IlpOne, &IlpTwo, &DpExact];

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker lanes for tile solving (0 = host parallelism).
    pub lanes: usize,
    /// Tile batches a request may claim per scheduling turn.
    pub quota: usize,
    /// Admission cap: scheduler submissions in flight before `Busy`.
    pub max_inflight: usize,
    /// Contexts kept warm in the LRU.
    pub ctx_cache_cap: usize,
    /// Parsed designs kept in the store.
    pub design_cache_cap: usize,
    /// Concurrent connections served before new ones are turned away
    /// with a `Busy` reply (each connection costs two threads).
    pub max_conns: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            lanes: 0,
            quota: 4,
            max_inflight: 32,
            ctx_cache_cap: 8,
            design_cache_cap: 16,
            max_conns: 256,
        }
    }
}

/// Rides out lock poisoning: a panicking request thread must not take
/// the whole server down with it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The request engine: fair scheduler + caches, shared by every
/// connection thread.
pub(crate) struct Engine {
    fair: FairPool,
    designs: Mutex<DesignStore>,
    ctxs: Mutex<CtxCache>,
}

impl Engine {
    pub(crate) fn new(opts: &ServeOptions) -> Engine {
        let lanes = match opts.lanes {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        };
        Engine {
            fair: FairPool::with_options(
                FairOptions::new(lanes)
                    .quota(opts.quota)
                    .max_inflight(opts.max_inflight),
            ),
            designs: Mutex::new(DesignStore::new(opts.design_cache_cap)),
            ctxs: Mutex::new(CtxCache::new(opts.ctx_cache_cap)),
        }
    }

    /// Handles one decoded request. Never panics outward: the caller
    /// wraps this in `catch_unwind` and answers `Err` on a panic.
    pub(crate) fn handle(&self, req: &Request, abort: &AtomicBool) -> Reply {
        match req {
            Request::Fill { design, params } => self.fill(design, params, abort),
            Request::Density {
                design,
                layer,
                window,
                r,
            } => self.density(design, *layer, *window, *r),
            Request::Verify {
                design,
                layer,
                features,
            } => self.verify(design, *layer, features),
            // The connection loop intercepts shutdowns; answering one
            // here would claim an authority the engine doesn't have.
            Request::Shutdown => Reply::Err {
                code: ERR_PROTOCOL,
                message: "shutdown must be handled by the connection loop".to_string(),
            },
        }
    }

    /// Resolves a design reference to `(store key, design)`.
    fn resolve(&self, dref: &DesignRef) -> Result<(DesignKey, Arc<Design>), Reply> {
        match dref {
            DesignRef::Inline(text) => {
                let design = Design::from_text(text).map_err(|e| Reply::Err {
                    code: ERR_DESIGN,
                    message: e.to_string(),
                })?;
                let hash = design_hash(&design);
                let design = Arc::new(design);
                lock(&self.designs).put(hash, Arc::clone(&design));
                Ok((hash, design))
            }
            DesignRef::Hash(hash) => match lock(&self.designs).get(*hash) {
                Some(design) => Ok((*hash, design)),
                None => Err(Reply::Err {
                    code: ERR_UNKNOWN_DESIGN,
                    message: format!("design {hash} not in store"),
                }),
            },
            DesignRef::Edit { base, ops } => {
                let hash = edit_hash(*base, ops);
                let mut designs = lock(&self.designs);
                if let Some(design) = designs.get(hash) {
                    return Ok((hash, design));
                }
                let base_design = designs.get(*base).ok_or_else(|| Reply::Err {
                    code: ERR_UNKNOWN_DESIGN,
                    message: format!("edit base {base} not in store"),
                })?;
                let mut design = (*base_design).clone();
                apply_edits(&mut design, ops).map_err(|message| Reply::Err {
                    code: ERR_DESIGN,
                    message,
                })?;
                let design = Arc::new(design);
                designs.put(hash, Arc::clone(&design));
                Ok((hash, design))
            }
        }
    }

    fn fill(&self, dref: &DesignRef, params: &FillParams, abort: &AtomicBool) -> Reply {
        let start = Instant::now();
        let config = match params.to_config() {
            Ok(c) => c,
            Err(message) => {
                return Reply::Err {
                    code: ERR_PROTOCOL,
                    message,
                }
            }
        };
        let method = METHODS[usize::from(params.method)]; // validated by to_config
        let (hash, design) = match self.resolve(dref) {
            Ok(r) => r,
            Err(reply) => return reply,
        };

        // Warm / rebuild / cold: get a context reflecting `design`.
        let checked_out = lock(&self.ctxs).checkout(&design.name, &config);
        let (mut entry, status) = match checked_out {
            Some(entry) if entry.design_hash == hash => (entry, FillStatus::Warm),
            Some(entry) => match self.rebuild_entry(entry, hash, &design, &config) {
                Ok(pair) => pair,
                Err(reply) => return reply,
            },
            None => match self.build_entry(hash, &design, &config) {
                Ok(entry) => (entry, FillStatus::Cold),
                Err(reply) => return reply,
            },
        };

        // Solve what the cache doesn't cover, fairly interleaved.
        let n = entry.ctx.problems().len();
        let mut solved = match entry.solved.take() {
            Some(s) if s.method == params.method && s.counts.len() == n => s,
            _ => SolvedTiles {
                method: params.method,
                counts: {
                    let mut v: Vec<Option<Vec<u32>>> = Vec::new();
                    v.resize_with(n, || None);
                    v
                },
            },
        };
        let needed: Vec<usize> = (0..n).filter(|&i| solved.counts[i].is_none()).collect();
        if !needed.is_empty() {
            let mut slots: Vec<Option<Result<Vec<u32>, String>>> = Vec::new();
            slots.resize_with(needed.len(), || None);
            let ctx = &entry.ctx;
            let run = self.fair.run_slots(
                &mut slots,
                |k, slot| {
                    *slot = Some(
                        ctx.solve_tile(&config, method, needed[k])
                            .map(|(counts, _)| counts)
                            .map_err(|e| e.to_string()),
                    );
                },
                Some(abort),
            );
            // Whatever finished is kept — an aborted request still warms
            // the cache for its successors.
            let mut failure: Option<String> = None;
            for (k, slot) in slots.into_iter().enumerate() {
                match slot {
                    Some(Ok(counts)) => solved.counts[needed[k]] = Some(counts),
                    Some(Err(e)) => failure = Some(e),
                    None => {}
                }
            }
            entry.solved = Some(solved);
            match run {
                Ok(_) if failure.is_none() => {}
                Ok(_) => {
                    self.checkin(entry);
                    return Reply::Err {
                        code: ERR_FLOW,
                        // failure is Some in this arm. pilfill: allow(unwrap)
                        message: failure.expect("solve failure recorded"),
                    };
                }
                Err(FairError::Busy { inflight }) => {
                    self.checkin(entry);
                    return Reply::Busy {
                        inflight: u32::try_from(inflight).unwrap_or(u32::MAX),
                    };
                }
                Err(FairError::Aborted) => {
                    self.checkin(entry);
                    return Reply::Err {
                        code: ERR_ABORTED,
                        message: "request aborted (client disconnected)".to_string(),
                    };
                }
            }
        } else {
            entry.solved = Some(solved);
        }

        // Assemble from the (now complete) per-tile counts. Cached solve
        // times are not replayed — the blob excludes timing, so replay
        // stays byte-identical to a fresh solve.
        let per_tile: Vec<(usize, Vec<u32>, Duration)> = {
            // Every index in 0..n is Some: `needed` covered the gaps and
            // the error paths returned above. pilfill: allow(unwrap)
            let solved = entry.solved.as_ref().expect("solved cached above");
            (0..n)
                .map(|i| {
                    // pilfill: allow(unwrap)
                    let counts = solved.counts[i].clone().expect("tile solved");
                    (i, counts, Duration::ZERO)
                })
                .collect()
        };
        let outcome = match entry.ctx.finish_run(method.name(), per_tile) {
            Ok(o) => o,
            Err(e) => {
                self.checkin(entry);
                return Reply::Err {
                    code: ERR_FLOW,
                    message: e.to_string(),
                };
            }
        };
        self.checkin(entry);
        let blob = encode_outcome_blob(&outcome);
        Reply::FillOk {
            status,
            server_ns: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            design_hash: hash,
            blob,
        }
    }

    /// Rebuilds a checked-out entry for an edited design, invalidating
    /// exactly the cached tiles the rebuild dirtied.
    fn rebuild_entry(
        &self,
        mut entry: CtxEntry,
        hash: DesignKey,
        design: &Design,
        config: &FlowConfig,
    ) -> Result<(CtxEntry, FillStatus), Reply> {
        let rebuilt = self
            .fair
            .with_pool(|pool| entry.ctx.rebuild_owned(design, config, pool));
        match rebuilt {
            Ok(Ok((stats, dirt))) => {
                entry.design_hash = hash;
                match dirt {
                    RebuildDirt::All => entry.solved = None,
                    RebuildDirt::Tiles(dirty) => {
                        if let Some(s) = &mut entry.solved {
                            for &t in &dirty {
                                if let Some(slot) = s.counts.get_mut(t) {
                                    *slot = None;
                                }
                            }
                        }
                    }
                }
                let status = if stats.full {
                    FillStatus::RebuildFull
                } else {
                    FillStatus::RebuildIncr
                };
                Ok((entry, status))
            }
            Ok(Err(e)) => {
                // A failed rebuild leaves the context on its previous
                // design (the incremental path fails before mutating;
                // the full path fails before replacing) — safe to keep.
                self.checkin(entry);
                Err(Reply::Err {
                    code: ERR_FLOW,
                    message: e.to_string(),
                })
            }
            Err(fair) => {
                self.checkin(entry);
                Err(busy_or_aborted(&fair))
            }
        }
    }

    /// Cold-builds a fresh entry as an exclusive scheduler turn.
    fn build_entry(
        &self,
        hash: DesignKey,
        design: &Design,
        config: &FlowConfig,
    ) -> Result<CtxEntry, Reply> {
        let built = self
            .fair
            .with_pool(|pool| FlowContext::build_pool(design, config, pool));
        match built {
            Ok(Ok(ctx)) => Ok(CtxEntry {
                name: design.name.clone(),
                config: config.clone(),
                design_hash: hash,
                ctx: ctx.into_owned(),
                solved: None,
            }),
            Ok(Err(e)) => Err(Reply::Err {
                code: ERR_FLOW,
                message: e.to_string(),
            }),
            Err(fair) => Err(busy_or_aborted(&fair)),
        }
    }

    fn checkin(&self, entry: CtxEntry) {
        lock(&self.ctxs).checkin(entry);
    }

    fn density(&self, dref: &DesignRef, layer: u32, window: i64, r: u64) -> Reply {
        let (hash, design) = match self.resolve(dref) {
            Ok(r) => r,
            Err(reply) => return reply,
        };
        let r = match usize::try_from(r) {
            Ok(r) => r,
            Err(_) => {
                return Reply::Err {
                    code: ERR_PROTOCOL,
                    message: format!("r {r} out of range"),
                }
            }
        };
        let dissection = match FixedDissection::new(design.die, window, r) {
            Ok(d) => d,
            Err(e) => {
                return Reply::Err {
                    code: ERR_FLOW,
                    message: e.to_string(),
                }
            }
        };
        let layer = LayerId(usize::try_from(layer).unwrap_or(usize::MAX));
        // One exclusive scheduler turn: density analysis counts against
        // `max_inflight` and yields `Busy` under load, like any other
        // request — admission control must not have a side door.
        let computed = self
            .fair
            .with_pool(|_| DensityMap::compute(&design, layer, &dissection).analyze());
        let analysis = match computed {
            Ok(a) => a,
            Err(fair) => return busy_or_aborted(&fair),
        };
        Reply::DensityOk {
            design_hash: hash,
            analysis: (
                analysis.min_window_density,
                analysis.max_window_density,
                analysis.variation,
                analysis.mean_window_density,
            ),
        }
    }

    fn verify(&self, dref: &DesignRef, layer: u32, features: &[(i64, i64)]) -> Reply {
        let (hash, design) = match self.resolve(dref) {
            Ok(r) => r,
            Err(reply) => return reply,
        };
        let features: Vec<FillFeature> = features
            .iter()
            .map(|&(x, y)| FillFeature { x, y })
            .collect();
        let layer = LayerId(usize::try_from(layer).unwrap_or(usize::MAX));
        // Same admission discipline as density: the DRC sweep takes an
        // exclusive scheduler turn instead of free-riding on the
        // connection thread.
        let report = match self
            .fair
            .with_pool(|_| check_fill(&design, layer, &features))
        {
            Ok(r) => r,
            Err(fair) => return busy_or_aborted(&fair),
        };
        Reply::VerifyOk {
            design_hash: hash,
            checked: u64::try_from(report.checked).unwrap_or(u64::MAX),
            violations: report.violations.iter().map(|v| v.to_string()).collect(),
        }
    }
}

fn busy_or_aborted(e: &FairError) -> Reply {
    match *e {
        FairError::Busy { inflight } => Reply::Busy {
            inflight: u32::try_from(inflight).unwrap_or(u32::MAX),
        },
        FairError::Aborted => Reply::Err {
            code: ERR_ABORTED,
            message: "request aborted (client disconnected)".to_string(),
        },
    }
}

/// A bound fill server. [`Server::run`] blocks until a client sends a
/// shutdown request.
pub struct Server {
    listener: Listener,
    engine: Arc<Engine>,
    shutdown: Arc<AtomicBool>,
    addr: String,
    max_conns: usize,
}

impl Server {
    /// Binds to `spec` (`unix:PATH`, a socket path, or TCP `host:port`).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(spec: &str, opts: &ServeOptions) -> std::io::Result<Server> {
        let listener = Listener::bind(spec)?;
        let addr = listener.addr();
        Ok(Server {
            listener,
            engine: Arc::new(Engine::new(opts)),
            shutdown: Arc::new(AtomicBool::new(false)),
            addr,
            max_conns: opts.max_conns.max(1),
        })
    }

    /// The spec clients should connect to (resolves TCP port 0 to the
    /// actual port; unix paths come back as `unix:PATH`).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Serves until a shutdown request arrives, then joins every
    /// connection thread and removes the unix socket file (if any).
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures other than `WouldBlock`.
    pub fn run(self) -> std::io::Result<()> {
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let result = loop {
            if self.shutdown.load(Ordering::Acquire) {
                break Ok(());
            }
            // Reap finished connection threads every pass: a long-lived
            // daemon churning through short-lived connections must not
            // accumulate handles (and their thread resources) until
            // shutdown.
            conns.retain(|conn| !conn.is_finished());
            match self.listener.accept() {
                Ok(mut stream) => {
                    if conns.len() >= self.max_conns {
                        // Same pushback contract as scheduler admission:
                        // an immediate Busy reply, then the connection is
                        // turned away — never an unbounded thread herd.
                        let inflight = u32::try_from(conns.len()).unwrap_or(u32::MAX);
                        let _ = write_frame(&mut stream, &encode_reply(&Reply::Busy { inflight }));
                        continue;
                    }
                    let engine = Arc::clone(&self.engine);
                    let shutdown = Arc::clone(&self.shutdown);
                    conns.push(std::thread::spawn(move || {
                        serve_conn(stream, &engine, &shutdown);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => break Err(e),
            }
        };
        // Connection threads poll the shutdown flag between frames (and
        // their reads time out), so they all exit promptly.
        for conn in conns {
            let _ = conn.join();
        }
        if let Some(path) = self.listener.unix_path() {
            let _ = std::fs::remove_file(path);
        }
        result
    }
}

/// Read timeout of the per-connection frame loop: long enough to make
/// polling cheap, short enough that shutdown is prompt.
const CONN_READ_TIMEOUT: Duration = Duration::from_millis(100);

fn serve_conn(mut stream: Stream, engine: &Engine, shutdown: &Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(CONN_READ_TIMEOUT));
    // The watcher peeks a clone of the socket while a request is being
    // handled; EOF there means the client is gone, and the abort flag
    // stops the request's remaining tile batches.
    let abort = Arc::new(AtomicBool::new(false));
    let conn_done = Arc::new(AtomicBool::new(false));
    let watcher = stream.try_clone().ok().map(|peer| {
        let abort = Arc::clone(&abort);
        let done = Arc::clone(&conn_done);
        std::thread::spawn(move || watch_disconnect(&peer, &abort, &done))
    });

    // One resumable reader for the connection's whole lifetime: a read
    // timeout mid-frame keeps the partial bytes buffered, so the next
    // poll tick resumes the same frame instead of re-parsing payload
    // bytes as a length prefix (which would desync every later reply).
    let mut frames = FrameReader::new();
    loop {
        if shutdown.load(Ordering::Acquire) || abort.load(Ordering::Acquire) {
            break;
        }
        let payload = match frames.poll(&mut stream) {
            Ok(FrameProgress::Frame(payload)) => payload,
            // Idle and mid-frame ticks both loop back to the flag
            // checks; only the reader knows where the frame left off.
            Ok(FrameProgress::Idle | FrameProgress::Pending) => continue,
            Ok(FrameProgress::Eof) => break, // clean EOF
            Err(_) => break,
        };
        let reply = match decode_request(&payload) {
            Ok(Request::Shutdown) => {
                shutdown.store(true, Ordering::Release);
                Reply::ShutdownOk
            }
            Ok(req) => {
                // A panic in a tile solve is re-raised in this thread by
                // the scheduler; turn it into an error reply instead of
                // silently dropping the connection.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    engine.handle(&req, &abort)
                }));
                outcome.unwrap_or_else(|_| Reply::Err {
                    code: ERR_FLOW,
                    message: "request handler panicked".to_string(),
                })
            }
            Err(e) => Reply::Err {
                code: ERR_PROTOCOL,
                message: e.to_string(),
            },
        };
        let is_shutdown = matches!(reply, Reply::ShutdownOk);
        if write_frame(&mut stream, &encode_reply(&reply)).is_err() {
            break;
        }
        if is_shutdown {
            break;
        }
    }

    conn_done.store(true, Ordering::Release);
    if let Some(watcher) = watcher {
        let _ = watcher.join();
    }
}

/// Polls a cloned socket for peer EOF while its connection thread works.
/// `peek` never consumes, so running concurrently with the frame loop's
/// reads is safe; pipelined request bytes just show up as `Ok(n > 0)`.
fn watch_disconnect(peer: &Stream, abort: &Arc<AtomicBool>, done: &Arc<AtomicBool>) {
    let mut buf = [0u8; 1];
    while !done.load(Ordering::Acquire) {
        match peer.peek(&mut buf) {
            Ok(0) => {
                abort.store(true, Ordering::Release);
                break;
            }
            Ok(_) => std::thread::sleep(Duration::from_millis(20)),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                abort.store(true, Ordering::Release);
                break;
            }
        }
    }
}

/// Lists the methods table in sync with the wire names — a compile-time
/// cross-check lives in the tests below.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::METHOD_NAMES;
    use pilfill_layout::synth::{synthesize, SynthConfig};

    #[test]
    fn method_table_matches_wire_names() {
        assert_eq!(METHODS.len(), METHOD_NAMES.len());
        // Wire name "ilp2" must select the method whose display name the
        // blob carries as "ILP-II" — same table order as the CLI.
        assert_eq!(METHODS[3].name(), "ILP-II");
        assert_eq!(METHODS[0].name(), "Normal");
    }

    /// Density and verify must share the fill path's admission control:
    /// with the single `max_inflight` slot occupied, both get `Busy`
    /// instead of running unbounded on the connection thread.
    #[test]
    fn density_and_verify_go_through_admission_control() {
        let opts = ServeOptions {
            lanes: 1,
            max_inflight: 1,
            ..ServeOptions::default()
        };
        let engine = Engine::new(&opts);
        let design = synthesize(&SynthConfig::small_test(3));
        let dref = DesignRef::Inline(design.to_text());

        let (entered_tx, entered_rx) = std::sync::mpsc::channel();
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        std::thread::scope(|s| {
            // Occupy the only admission slot with a blocked exclusive
            // turn; nothing else may be admitted until it is released.
            s.spawn(|| {
                engine
                    .fair
                    .with_pool(move |_| {
                        entered_tx.send(()).expect("signal entry");
                        release_rx.recv().expect("await release");
                    })
                    .expect("exclusive turn");
            });
            entered_rx.recv().expect("occupant running");
            assert!(
                matches!(engine.density(&dref, 0, 8_000, 2), Reply::Busy { .. }),
                "density must be rejected while the scheduler is full"
            );
            assert!(
                matches!(engine.verify(&dref, 0, &[]), Reply::Busy { .. }),
                "verify must be rejected while the scheduler is full"
            );
            release_tx.send(()).expect("release occupant");
        });

        // With the slot free the same requests are served.
        assert!(matches!(
            engine.density(&dref, 0, 8_000, 2),
            Reply::DensityOk { .. }
        ));
        assert!(matches!(
            engine.verify(&dref, 0, &[]),
            Reply::VerifyOk { .. }
        ));
    }
}
