//! Server-side caches: the design store and the [`FlowContext`] LRU.
//!
//! Both are plain `Vec`-backed LRU lists guarded by the server's
//! mutexes. Capacities are small (designs are ~100 KiB, contexts a few
//! MiB), so linear scans beat hashing — and [`FlowConfig`] contains
//! `f64` fields, which rules out deriving `Hash`/`Eq` for a map key
//! anyway.
//!
//! The context cache is keyed by *(design name, config)*, not by design
//! hash: an edited design keeps its name, and landing on the base
//! design's entry is exactly what routes the request through
//! [`FlowContext::rebuild`] instead of a cold build. The entry records
//! the hash of the design it currently reflects, so the engine can tell
//! "same design — replay" from "edited design — rebuild".
//!
//! Entries are *checked out* (removed) while a request uses them and
//! checked back in afterwards, so two concurrent requests for the same
//! key never share a context; the loser of the race simply builds cold
//! and the newer entry wins the slot on check-in.

use crate::protocol::DesignKey;
use pilfill_core::flow::{FlowConfig, FlowContext};
use pilfill_layout::Design;
use std::sync::Arc;

/// LRU store of parsed designs, keyed by [`crate::protocol::design_hash`].
#[derive(Debug)]
pub(crate) struct DesignStore {
    cap: usize,
    /// Most-recently-used first.
    entries: Vec<(DesignKey, Arc<Design>)>,
}

impl DesignStore {
    pub(crate) fn new(cap: usize) -> Self {
        DesignStore {
            cap: cap.max(1),
            entries: Vec::new(),
        }
    }

    /// Looks a design up and marks it most-recently-used.
    pub(crate) fn get(&mut self, hash: DesignKey) -> Option<Arc<Design>> {
        let i = self.entries.iter().position(|(h, _)| *h == hash)?;
        let entry = self.entries.remove(i);
        let design = Arc::clone(&entry.1);
        self.entries.insert(0, entry);
        Some(design)
    }

    /// Inserts (or refreshes) a design, evicting the least-recently-used
    /// entry beyond capacity.
    pub(crate) fn put(&mut self, hash: DesignKey, design: Arc<Design>) {
        self.entries.retain(|(h, _)| *h != hash);
        self.entries.insert(0, (hash, design));
        self.entries.truncate(self.cap);
    }
}

/// Per-tile solved results cached alongside a context: replaying them
/// through [`FlowContext::finish_run`] is bit-identical to re-solving
/// (the per-tile RNG seeds depend only on the tile cell).
#[derive(Debug, Clone)]
pub(crate) struct SolvedTiles {
    /// Method index ([`crate::protocol::METHOD_NAMES`]) the counts were
    /// solved with.
    pub(crate) method: u8,
    /// Per-tile per-column fill counts, indexed by row-major tile
    /// index; `None` marks a tile whose cached counts were invalidated
    /// by a rebuild (or never solved).
    pub(crate) counts: Vec<Option<Vec<u32>>>,
}

/// One cached context: the design hash it reflects, the prepared
/// [`FlowContext`], and optionally the last solve's per-tile results.
#[derive(Debug)]
pub(crate) struct CtxEntry {
    /// Cache key: design name (stable across edits) + flow config.
    pub(crate) name: String,
    /// Flow config the context was built for.
    pub(crate) config: FlowConfig,
    /// [`crate::protocol::design_hash`] of the design the context
    /// currently reflects.
    pub(crate) design_hash: DesignKey,
    /// The prepared (detached) context.
    pub(crate) ctx: FlowContext<'static>,
    /// Last solve's per-tile counts, if any.
    pub(crate) solved: Option<SolvedTiles>,
}

/// LRU cache of detached [`FlowContext`]s, checked out by key.
#[derive(Debug)]
pub(crate) struct CtxCache {
    cap: usize,
    /// Most-recently-used first.
    entries: Vec<CtxEntry>,
}

impl CtxCache {
    pub(crate) fn new(cap: usize) -> Self {
        CtxCache {
            cap: cap.max(1),
            entries: Vec::new(),
        }
    }

    /// Removes and returns the entry for `(name, config)`, if cached.
    /// The caller owns it until [`CtxCache::checkin`].
    pub(crate) fn checkout(&mut self, name: &str, config: &FlowConfig) -> Option<CtxEntry> {
        let i = self
            .entries
            .iter()
            .position(|e| e.name == name && e.config == *config)?;
        Some(self.entries.remove(i))
    }

    /// Returns an entry to the cache as most-recently-used. If a
    /// concurrent request checked in the same key first, the newer entry
    /// replaces it; beyond capacity the least-recently-used entry is
    /// dropped.
    pub(crate) fn checkin(&mut self, entry: CtxEntry) {
        self.entries
            .retain(|e| !(e.name == entry.name && e.config == entry.config));
        self.entries.insert(0, entry);
        self.entries.truncate(self.cap);
    }

    /// Number of cached contexts (for tests/introspection).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilfill_layout::synth::{synthesize, SynthConfig};

    /// Shorthand key for cache tests.
    fn key(b: u8) -> DesignKey {
        DesignKey([b; 32])
    }

    fn ctx_entry(name: &str, seed: u64, hash: DesignKey) -> CtxEntry {
        let design = synthesize(&SynthConfig::small_test(7));
        let mut config = FlowConfig::new(8_000, 2).expect("valid window");
        config.seed = seed;
        let ctx = FlowContext::build(&design, &config)
            .expect("build")
            .into_owned();
        CtxEntry {
            name: name.to_string(),
            config,
            design_hash: hash,
            ctx,
            solved: None,
        }
    }

    #[test]
    fn design_store_is_lru() {
        let d = Arc::new(synthesize(&SynthConfig::small_test(7)));
        let mut store = DesignStore::new(2);
        store.put(key(1), Arc::clone(&d));
        store.put(key(2), Arc::clone(&d));
        assert!(store.get(key(1)).is_some()); // 1 now MRU
        store.put(key(3), Arc::clone(&d)); // evicts 2
        assert!(store.get(key(2)).is_none());
        assert!(store.get(key(1)).is_some());
        assert!(store.get(key(3)).is_some());
    }

    #[test]
    fn ctx_cache_checkout_removes_and_checkin_restores() {
        let mut cache = CtxCache::new(2);
        let entry = ctx_entry("a", 1, key(10));
        let config = entry.config.clone();
        cache.checkin(entry);
        assert_eq!(cache.len(), 1);
        let out = cache.checkout("a", &config).expect("cached");
        assert_eq!(cache.len(), 0);
        assert!(cache.checkout("a", &config).is_none());
        cache.checkin(out);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn ctx_cache_distinguishes_configs_and_evicts_lru() {
        let mut cache = CtxCache::new(2);
        let a1 = ctx_entry("a", 1, key(10));
        let a2 = ctx_entry("a", 2, key(10)); // same name, different config.seed
        let config1 = a1.config.clone();
        let config2 = a2.config.clone();
        cache.checkin(a1);
        cache.checkin(a2);
        assert_eq!(cache.len(), 2);
        // `b` evicts the LRU entry (a1).
        cache.checkin(ctx_entry("b", 1, key(11)));
        assert!(cache.checkout("a", &config1).is_none());
        assert!(cache.checkout("a", &config2).is_some());
    }

    #[test]
    fn ctx_cache_capacity_one_keeps_newest() {
        let mut cache = CtxCache::new(1);
        let a = ctx_entry("a", 1, key(10));
        let b = ctx_entry("b", 1, key(11));
        let config = a.config.clone();
        cache.checkin(a);
        cache.checkin(b);
        assert_eq!(cache.len(), 1);
        assert!(cache.checkout("a", &config).is_none());
        assert!(cache.checkout("b", &config).is_some());
    }
}
