//! # pilfill-serve
//!
//! Fill as a service: a persistent daemon that serves fill, density,
//! and verify requests over a length-prefixed binary frame protocol
//! (TCP or unix sockets), composing three pieces the batch CLI already
//! proved out:
//!
//! - a **design store + [`FlowContext`] LRU** keyed so that repeated
//!   and *edited* designs hit the incremental
//!   [`rebuild`](pilfill_core::FlowContext::rebuild) path instead of a
//!   cold build — the ECO-loop shape the paper's flow actually deploys
//!   in;
//! - **fair scheduling** ([`pilfill_exec::FairPool`]): tile batches
//!   from concurrent requests interleave round-robin on one shared
//!   worker pool, with admission control surfacing as `Busy` replies
//!   instead of unbounded queueing;
//! - a **deterministic wire format** ([`protocol`]): every fill reply
//!   carries a byte-exact outcome blob, bit-identical to the one-shot
//!   CLI for the same request at any lane count and any request
//!   interleaving.
//!
//! [`FlowContext`]: pilfill_core::FlowContext
//!
//! # Example
//!
//! ```no_run
//! use pilfill_serve::{Client, ServeOptions, Server};
//! use pilfill_serve::protocol::{DesignRef, FillParams};
//!
//! let server = Server::bind("127.0.0.1:0", &ServeOptions::default())?;
//! let addr = server.addr().to_string();
//! std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(&addr)?;
//! let params = FillParams::new(8_000, 2).expect("valid window");
//! let reply = client.fill(DesignRef::Inline("...".into()), params)?;
//! # let _ = reply;
//! # Ok::<(), std::io::Error>(())
//! ```

mod cache;
pub mod client;
mod net;
pub mod protocol;
pub mod server;
mod sha;

pub use client::Client;
pub use server::{ServeOptions, Server};
