//! The wire protocol of the fill service.
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by the payload, whose first byte is the message type. All
//! multi-byte integers are little-endian; `f64` values travel as their
//! IEEE-754 bit patterns (`to_bits`), so a reply is a deterministic byte
//! string — the serving layer inherits the repo's bit-identical
//! invariant.
//!
//! Designs are keyed by a 256-bit SHA-256 digest of their canonical
//! text form ([`design_hash`], a [`DesignKey`]) — collision-resistant,
//! so a store key can never silently alias a different layout. A
//! request can carry the design inline, refer to a previously uploaded
//! design by key, or describe a small *edit* against a base key
//! ([`DesignRef::Edit`]) — the shape of an ECO loop, and the path that
//! exercises the server's warm [`FlowContext`] cache.
//!
//! [`FlowContext`]: pilfill_core::FlowContext

use pilfill_core::flow::{FlowConfig, FlowOutcome};
use pilfill_core::SlackColumnDef;
use pilfill_geom::Coord;
use pilfill_layout::{Design, LayerId};
use std::io::{Read, Write};

/// Frames larger than this are rejected before allocation (a corrupt or
/// hostile length prefix must not drive an OOM).
pub const MAX_FRAME: u32 = 64 << 20;

/// Request: run the fill flow (`0x01`).
pub const MSG_FILL: u8 = 0x01;
/// Request: window-density analysis only (`0x02`).
pub const MSG_DENSITY: u8 = 0x02;
/// Request: DRC-check a fill placement (`0x03`).
pub const MSG_VERIFY: u8 = 0x03;
/// Request: shut the server down (`0x04`).
pub const MSG_SHUTDOWN: u8 = 0x04;
/// Reply: fill outcome (`0x81`).
pub const MSG_FILL_OK: u8 = 0x81;
/// Reply: density analysis (`0x82`).
pub const MSG_DENSITY_OK: u8 = 0x82;
/// Reply: DRC report (`0x83`).
pub const MSG_VERIFY_OK: u8 = 0x83;
/// Reply: admission control pushed back — retry later (`0x84`).
pub const MSG_BUSY: u8 = 0x84;
/// Reply: request failed (`0x85`).
pub const MSG_ERR: u8 = 0x85;
/// Reply: shutdown acknowledged (`0x86`).
pub const MSG_SHUTDOWN_OK: u8 = 0x86;

/// `u32` wire lengths/indices widen losslessly into `usize` on every
/// target the workspace supports (64-bit).
fn to_usize(v: u32) -> usize {
    v as usize // pilfill: allow(as-cast)
}

/// Collection length → wire `u32`, saturating: payloads anywhere near
/// 4 GiB are rejected by the [`MAX_FRAME`] check long before a truncated
/// length could be observed.
fn len_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// A design-store key: the SHA-256 digest of the design's canonical
/// text ([`design_hash`]) or of a base key plus edit ops
/// ([`edit_hash`]). Collision resistance is what makes content
/// addressing safe here — a key that could collide would make a
/// by-hash request silently resolve to a *different* cached layout.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignKey(pub [u8; 32]);

impl DesignKey {
    /// Wire size of a key in bytes.
    pub const LEN: usize = 32;
}

impl std::fmt::Display for DesignKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for DesignKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DesignKey({self})")
    }
}

/// The design-store key: SHA-256 of the canonical text serialization.
pub fn design_hash(design: &Design) -> DesignKey {
    DesignKey(crate::sha::sha256(design.to_text().as_bytes()))
}

/// One in-place design edit, applied server-side against a cached base
/// design. Edits are the warm path: the server reuses the base's
/// [`pilfill_core::FlowContext`] through `rebuild` instead of building
/// from scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOp {
    /// Duplicate the first sink of net `net` (a value-only edit: no
    /// geometry moves, only delay weights change).
    DupSink {
        /// Net index.
        net: u32,
    },
    /// Widen segment `seg` of net `net` by `delta` dbu (a geometry edit:
    /// densities change, the budget is recomputed).
    WidenSegment {
        /// Net index.
        net: u32,
        /// Segment index within the net.
        seg: u32,
        /// Width delta in dbu (may be negative).
        delta: i64,
    },
}

/// How a request names its design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignRef {
    /// Full canonical design text, parsed and cached server-side.
    Inline(String),
    /// A design previously seen by the server, by [`design_hash`].
    Hash(DesignKey),
    /// An edit of a cached base design. The edited design's store key is
    /// derived from `(base, ops)` — [`edit_hash`] — so a repeated edit
    /// request is itself a cache hit.
    Edit {
        /// [`design_hash`] of the base design.
        base: DesignKey,
        /// Edits, applied in order.
        ops: Vec<EditOp>,
    },
}

/// Store key of an edited design: SHA-256 over the base key and the
/// serialized edit ops. Cheaper than re-serializing the edited design,
/// and stable across clients, so identical edits dedupe.
pub fn edit_hash(base: DesignKey, ops: &[EditOp]) -> DesignKey {
    let mut bytes = Vec::with_capacity(DesignKey::LEN + ops.len() * 17);
    bytes.extend_from_slice(&base.0);
    for op in ops {
        match *op {
            EditOp::DupSink { net } => {
                bytes.push(0);
                bytes.extend_from_slice(&net.to_le_bytes());
            }
            EditOp::WidenSegment { net, seg, delta } => {
                bytes.push(1);
                bytes.extend_from_slice(&net.to_le_bytes());
                bytes.extend_from_slice(&seg.to_le_bytes());
                bytes.extend_from_slice(&delta.to_le_bytes());
            }
        }
    }
    DesignKey(crate::sha::sha256(&bytes))
}

/// Fill-flow parameters of a [`Request::Fill`] — the wire form of
/// [`FlowConfig`] plus the method selector.
#[derive(Debug, Clone, PartialEq)]
pub struct FillParams {
    /// Fill target layer.
    pub layer: u32,
    /// Density window size in dbu.
    pub window: i64,
    /// Dissection parameter `r`.
    pub r: u64,
    /// Slack-column definition (1, 2, or 3).
    pub def: u8,
    /// Weighted objective?
    pub weighted: bool,
    /// Window-density upper bound.
    pub max_density: f64,
    /// Seed for stochastic methods.
    pub seed: u64,
    /// Exact-LP budgeting?
    pub lp_budget: bool,
    /// Method selector: an index into [`METHOD_NAMES`].
    pub method: u8,
}

/// CLI names of the placement methods, indexed by [`FillParams::method`].
pub const METHOD_NAMES: [&str; 5] = ["normal", "greedy", "ilp1", "ilp2", "dp"];

impl FillParams {
    /// Default parameters: window/r with ILP-II and the [`FlowConfig`]
    /// defaults.
    ///
    /// # Errors
    ///
    /// Propagates [`FlowConfig::new`] validation.
    pub fn new(window: Coord, r: usize) -> Result<Self, pilfill_core::FlowError> {
        let config = FlowConfig::new(window, r)?;
        Ok(Self::from_config(&config, 3))
    }

    /// Wire form of an existing config + method index.
    pub fn from_config(config: &FlowConfig, method: u8) -> Self {
        FillParams {
            layer: len_u32(config.layer.0),
            window: config.window,
            r: config.r as u64,
            def: match config.def {
                SlackColumnDef::One => 1,
                SlackColumnDef::Two => 2,
                SlackColumnDef::Three => 3,
            },
            weighted: config.weighted,
            max_density: config.max_density,
            seed: config.seed,
            lp_budget: config.lp_budget,
            method,
        }
    }

    /// Reconstructs the [`FlowConfig`] these parameters describe.
    ///
    /// # Errors
    ///
    /// Returns a message for out-of-range fields or invalid dissection
    /// parameters.
    pub fn to_config(&self) -> Result<FlowConfig, String> {
        let r = usize::try_from(self.r).map_err(|_| format!("r {} out of range", self.r))?;
        let mut config = FlowConfig::new(self.window, r).map_err(|e| e.to_string())?;
        config.layer = LayerId(to_usize(self.layer));
        config.def = match self.def {
            1 => SlackColumnDef::One,
            2 => SlackColumnDef::Two,
            3 => SlackColumnDef::Three,
            d => return Err(format!("unknown slack-column definition {d}")),
        };
        config.weighted = self.weighted;
        config.max_density = self.max_density;
        config.seed = self.seed;
        config.lp_budget = self.lp_budget;
        if usize::from(self.method) >= METHOD_NAMES.len() {
            return Err(format!("unknown method index {}", self.method));
        }
        Ok(config)
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run the fill flow.
    Fill {
        /// The design to fill.
        design: DesignRef,
        /// Flow parameters.
        params: FillParams,
    },
    /// Window-density analysis of the bare design.
    Density {
        /// The design to analyze.
        design: DesignRef,
        /// Layer index.
        layer: u32,
        /// Density window size in dbu.
        window: i64,
        /// Dissection parameter `r`.
        r: u64,
    },
    /// DRC-check externally supplied fill features.
    Verify {
        /// The design to check against.
        design: DesignRef,
        /// Layer index.
        layer: u32,
        /// Feature lower-left corners `(x, y)`.
        features: Vec<(i64, i64)>,
    },
    /// Shut the server down.
    Shutdown,
}

/// How warm the serving path was for a [`Reply::FillOk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillStatus {
    /// No cached context: full build + full solve.
    Cold,
    /// Cached context matched the design hash: results replayed (or
    /// solved once) with no rebuild.
    Warm,
    /// Cached context rebuilt through the incremental path.
    RebuildIncr,
    /// Cached context rebuilt through the full fallback.
    RebuildFull,
}

impl FillStatus {
    fn to_byte(self) -> u8 {
        match self {
            FillStatus::Cold => 0,
            FillStatus::Warm => 1,
            FillStatus::RebuildIncr => 2,
            FillStatus::RebuildFull => 3,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtocolError> {
        Ok(match b {
            0 => FillStatus::Cold,
            1 => FillStatus::Warm,
            2 => FillStatus::RebuildIncr,
            3 => FillStatus::RebuildFull,
            other => return Err(ProtocolError::bad(format!("fill status {other}"))),
        })
    }
}

/// A server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Fill succeeded.
    FillOk {
        /// Cache temperature of the serving path.
        status: FillStatus,
        /// Server-side handling time in nanoseconds (excluded from the
        /// deterministic `blob`).
        server_ns: u64,
        /// Store key of the design that was filled.
        design_hash: DesignKey,
        /// Deterministic outcome serialization ([`encode_outcome_blob`]).
        blob: Vec<u8>,
    },
    /// Density analysis succeeded: `(min, max, variation, mean)`.
    DensityOk {
        /// Store key of the analyzed design.
        design_hash: DesignKey,
        /// `(min, max, variation, mean)` window density.
        analysis: (f64, f64, f64, f64),
    },
    /// Verify succeeded.
    VerifyOk {
        /// Store key of the checked design.
        design_hash: DesignKey,
        /// Features checked.
        checked: u64,
        /// Human-readable violations (empty = clean).
        violations: Vec<String>,
    },
    /// Admission control rejected the request; retry later.
    Busy {
        /// Requests in flight when the request was rejected.
        inflight: u32,
    },
    /// The request failed.
    Err {
        /// Coarse error class ([`ERR_PROTOCOL`] etc.).
        code: u8,
        /// Human-readable description.
        message: String,
    },
    /// Shutdown acknowledged; the server stops accepting connections.
    ShutdownOk,
}

/// [`Reply::Err`] code: malformed request frame.
pub const ERR_PROTOCOL: u8 = 1;
/// [`Reply::Err`] code: design parse/validation failure.
pub const ERR_DESIGN: u8 = 2;
/// [`Reply::Err`] code: flow execution failure.
pub const ERR_FLOW: u8 = 3;
/// [`Reply::Err`] code: [`DesignRef::Hash`]/[`DesignRef::Edit`] base not
/// in the store.
pub const ERR_UNKNOWN_DESIGN: u8 = 4;
/// [`Reply::Err`] code: the request was aborted (client went away).
pub const ERR_ABORTED: u8 = 5;

/// A malformed frame.
#[derive(Debug)]
pub struct ProtocolError(pub String);

impl ProtocolError {
    fn bad(what: impl Into<String>) -> Self {
        ProtocolError(what.into())
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

// ---------------------------------------------------------------- framing

/// Writes one frame: `u32` length prefix + payload.
///
/// # Errors
///
/// I/O errors from `w`; an oversized payload is an `InvalidData` error.
pub fn write_frame(w: &mut dyn Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame payload from a *blocking* stream. `Ok(None)` on
/// clean EOF before the first length byte.
///
/// On a socket with a read timeout, use [`FrameReader`] instead: a
/// one-shot read cannot resume a partially received frame, so here a
/// timeout surfaces as a `TimedOut` error rather than desyncing the
/// stream.
///
/// # Errors
///
/// I/O errors from `r`; an oversized or truncated frame is an
/// `InvalidData`/`UnexpectedEof` error; a read timeout is `TimedOut`.
pub fn read_frame(r: &mut dyn Read) -> std::io::Result<Option<Vec<u8>>> {
    match FrameReader::new().poll(r)? {
        FrameProgress::Frame(payload) => Ok(Some(payload)),
        FrameProgress::Eof => Ok(None),
        FrameProgress::Idle | FrameProgress::Pending => Err(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "frame read timed out",
        )),
    }
}

/// What one [`FrameReader::poll`] step observed.
#[derive(Debug)]
pub enum FrameProgress {
    /// The read timed out with *no* bytes of a frame buffered — a true
    /// idle tick. Polling again later is safe.
    Idle,
    /// The read timed out mid-frame. The partial length/payload bytes
    /// are retained; the next poll resumes exactly where this one
    /// stopped.
    Pending,
    /// One complete frame payload.
    Frame(Vec<u8>),
    /// The peer closed the connection at a frame boundary.
    Eof,
}

/// Incremental frame reader for sockets that wake up on `SO_RCVTIMEO`.
///
/// A server poll loop needs read timeouts to notice shutdown and abort
/// flags, but a timeout can fire after part of the 4-byte length prefix
/// or payload has already been consumed. Discarding those bytes (as a
/// fresh [`read_frame`] call would) desyncs the connection: later
/// payload bytes get parsed as a new length prefix and every reply goes
/// out of phase with the client's requests. `FrameReader` keeps the
/// partial frame across polls, so the distinction the loop needs is
/// explicit: [`FrameProgress::Idle`] (nothing buffered, fine to treat
/// as an idle tick) vs [`FrameProgress::Pending`] (mid-frame, keep
/// polling).
#[derive(Debug, Default)]
pub struct FrameReader {
    /// Length-prefix bytes received so far.
    len: [u8; 4],
    /// How many bytes of `len` are valid.
    have: usize,
    /// Payload buffer, allocated once the length prefix is complete.
    payload: Option<Vec<u8>>,
    /// Payload bytes received so far.
    filled: usize,
}

/// Timeout error kinds a poll tick absorbs (unix reports `WouldBlock`,
/// Windows `TimedOut`).
fn is_read_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

impl FrameReader {
    /// A reader with no frame in progress.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Advances the in-progress frame as far as `r` allows.
    ///
    /// # Errors
    ///
    /// I/O errors other than timeouts and interrupts; EOF mid-frame is
    /// `UnexpectedEof`, an oversized length prefix `InvalidData`. After
    /// an error the reader's position in the byte stream is undefined —
    /// drop the connection instead of polling again.
    pub fn poll(&mut self, r: &mut dyn Read) -> std::io::Result<FrameProgress> {
        while self.payload.is_none() {
            if self.have == self.len.len() {
                let len = u32::from_le_bytes(self.len);
                if len > MAX_FRAME {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("frame length {len} exceeds cap"),
                    ));
                }
                self.payload = Some(vec![0u8; to_usize(len)]);
                self.filled = 0;
                break;
            }
            match r.read(&mut self.len[self.have..]) {
                Ok(0) if self.have == 0 => return Ok(FrameProgress::Eof),
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "eof inside a frame length prefix",
                    ))
                }
                Ok(n) => self.have += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if is_read_timeout(&e) => {
                    return Ok(if self.have == 0 {
                        FrameProgress::Idle
                    } else {
                        FrameProgress::Pending
                    })
                }
                Err(e) => return Err(e),
            }
        }
        loop {
            // The prefix loop above ran to `break` or the payload
            // survived an earlier Pending poll. pilfill: allow(unwrap)
            let payload = self.payload.as_mut().expect("payload allocated");
            if self.filled == payload.len() {
                break;
            }
            match r.read(&mut payload[self.filled..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "eof inside a frame payload",
                    ))
                }
                Ok(n) => self.filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if is_read_timeout(&e) => return Ok(FrameProgress::Pending),
                Err(e) => return Err(e),
            }
        }
        self.have = 0;
        // The loop above only breaks with the payload complete.
        // pilfill: allow(unwrap)
        let payload = self.payload.take().expect("complete payload");
        Ok(FrameProgress::Frame(payload))
    }
}

// ----------------------------------------------------------- byte cursor

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| ProtocolError::bad("truncated frame"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        // take(2) returns exactly 2 bytes. pilfill: allow(unwrap)
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        // take(4) returns exactly 4 bytes. pilfill: allow(unwrap)
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        // take(8) returns exactly 8 bytes. pilfill: allow(unwrap)
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn i64(&mut self) -> Result<i64, ProtocolError> {
        Ok(self.u64()? as i64)
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn key(&mut self) -> Result<DesignKey, ProtocolError> {
        let bytes = self.take(DesignKey::LEN)?;
        // take(32) returns exactly 32 bytes. pilfill: allow(unwrap)
        Ok(DesignKey(bytes.try_into().expect("len 32")))
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        let len = to_usize(self.u32()?);
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::bad("invalid utf-8"))
    }

    fn done(&self) -> Result<(), ProtocolError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(ProtocolError::bad("trailing bytes"))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&len_u32(s.len()).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_design_ref(out: &mut Vec<u8>, design: &DesignRef) {
    match design {
        DesignRef::Inline(text) => {
            out.push(0);
            put_string(out, text);
        }
        DesignRef::Hash(h) => {
            out.push(1);
            out.extend_from_slice(&h.0);
        }
        DesignRef::Edit { base, ops } => {
            out.push(2);
            out.extend_from_slice(&base.0);
            out.extend_from_slice(&u16::try_from(ops.len()).unwrap_or(u16::MAX).to_le_bytes());
            for op in ops {
                match *op {
                    EditOp::DupSink { net } => {
                        out.push(0);
                        out.extend_from_slice(&net.to_le_bytes());
                    }
                    EditOp::WidenSegment { net, seg, delta } => {
                        out.push(1);
                        out.extend_from_slice(&net.to_le_bytes());
                        out.extend_from_slice(&seg.to_le_bytes());
                        out.extend_from_slice(&delta.to_le_bytes());
                    }
                }
            }
        }
    }
}

fn get_design_ref(c: &mut Cursor<'_>) -> Result<DesignRef, ProtocolError> {
    Ok(match c.u8()? {
        0 => DesignRef::Inline(c.string()?),
        1 => DesignRef::Hash(c.key()?),
        2 => {
            let base = c.key()?;
            let count = c.u16()?;
            let mut ops = Vec::with_capacity(usize::from(count));
            for _ in 0..count {
                ops.push(match c.u8()? {
                    0 => EditOp::DupSink { net: c.u32()? },
                    1 => EditOp::WidenSegment {
                        net: c.u32()?,
                        seg: c.u32()?,
                        delta: c.i64()?,
                    },
                    other => return Err(ProtocolError::bad(format!("edit op {other}"))),
                });
            }
            DesignRef::Edit { base, ops }
        }
        other => return Err(ProtocolError::bad(format!("design ref tag {other}"))),
    })
}

// ------------------------------------------------------- request codecs

/// Serializes a request into a frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Fill { design, params } => {
            out.push(MSG_FILL);
            put_design_ref(&mut out, design);
            out.extend_from_slice(&params.layer.to_le_bytes());
            out.extend_from_slice(&params.window.to_le_bytes());
            out.extend_from_slice(&params.r.to_le_bytes());
            out.push(params.def);
            out.push(u8::from(params.weighted));
            out.extend_from_slice(&params.max_density.to_bits().to_le_bytes());
            out.extend_from_slice(&params.seed.to_le_bytes());
            out.push(u8::from(params.lp_budget));
            out.push(params.method);
        }
        Request::Density {
            design,
            layer,
            window,
            r,
        } => {
            out.push(MSG_DENSITY);
            put_design_ref(&mut out, design);
            out.extend_from_slice(&layer.to_le_bytes());
            out.extend_from_slice(&window.to_le_bytes());
            out.extend_from_slice(&r.to_le_bytes());
        }
        Request::Verify {
            design,
            layer,
            features,
        } => {
            out.push(MSG_VERIFY);
            put_design_ref(&mut out, design);
            out.extend_from_slice(&layer.to_le_bytes());
            out.extend_from_slice(&len_u32(features.len()).to_le_bytes());
            for &(x, y) in features {
                out.extend_from_slice(&x.to_le_bytes());
                out.extend_from_slice(&y.to_le_bytes());
            }
        }
        Request::Shutdown => out.push(MSG_SHUTDOWN),
    }
    out
}

/// Parses a request frame payload.
///
/// # Errors
///
/// [`ProtocolError`] on unknown message types, truncation, or trailing
/// bytes.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    let mut c = Cursor::new(payload);
    let req = match c.u8()? {
        MSG_FILL => {
            let design = get_design_ref(&mut c)?;
            let params = FillParams {
                layer: c.u32()?,
                window: c.i64()?,
                r: c.u64()?,
                def: c.u8()?,
                weighted: c.u8()? != 0,
                max_density: c.f64()?,
                seed: c.u64()?,
                lp_budget: c.u8()? != 0,
                method: c.u8()?,
            };
            Request::Fill { design, params }
        }
        MSG_DENSITY => Request::Density {
            design: get_design_ref(&mut c)?,
            layer: c.u32()?,
            window: c.i64()?,
            r: c.u64()?,
        },
        MSG_VERIFY => {
            let design = get_design_ref(&mut c)?;
            let layer = c.u32()?;
            let count = to_usize(c.u32()?);
            // 16 bytes per feature must fit the remaining payload.
            if count > payload.len() / 16 + 1 {
                return Err(ProtocolError::bad("feature count exceeds frame"));
            }
            let mut features = Vec::with_capacity(count);
            for _ in 0..count {
                features.push((c.i64()?, c.i64()?));
            }
            Request::Verify {
                design,
                layer,
                features,
            }
        }
        MSG_SHUTDOWN => Request::Shutdown,
        other => return Err(ProtocolError::bad(format!("request type {other:#x}"))),
    };
    c.done()?;
    Ok(req)
}

// --------------------------------------------------------- reply codecs

/// Serializes a reply into a frame payload.
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut out = Vec::new();
    match reply {
        Reply::FillOk {
            status,
            server_ns,
            design_hash,
            blob,
        } => {
            out.push(MSG_FILL_OK);
            out.push(status.to_byte());
            out.extend_from_slice(&server_ns.to_le_bytes());
            out.extend_from_slice(&design_hash.0);
            out.extend_from_slice(&len_u32(blob.len()).to_le_bytes());
            out.extend_from_slice(blob);
        }
        Reply::DensityOk {
            design_hash,
            analysis,
        } => {
            out.push(MSG_DENSITY_OK);
            out.extend_from_slice(&design_hash.0);
            for v in [analysis.0, analysis.1, analysis.2, analysis.3] {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        Reply::VerifyOk {
            design_hash,
            checked,
            violations,
        } => {
            out.push(MSG_VERIFY_OK);
            out.extend_from_slice(&design_hash.0);
            out.extend_from_slice(&checked.to_le_bytes());
            out.extend_from_slice(&len_u32(violations.len()).to_le_bytes());
            for v in violations {
                put_string(&mut out, v);
            }
        }
        Reply::Busy { inflight } => {
            out.push(MSG_BUSY);
            out.extend_from_slice(&inflight.to_le_bytes());
        }
        Reply::Err { code, message } => {
            out.push(MSG_ERR);
            out.push(*code);
            put_string(&mut out, message);
        }
        Reply::ShutdownOk => out.push(MSG_SHUTDOWN_OK),
    }
    out
}

/// Parses a reply frame payload.
///
/// # Errors
///
/// [`ProtocolError`] on unknown message types, truncation, or trailing
/// bytes.
pub fn decode_reply(payload: &[u8]) -> Result<Reply, ProtocolError> {
    let mut c = Cursor::new(payload);
    let reply = match c.u8()? {
        MSG_FILL_OK => {
            let status = FillStatus::from_byte(c.u8()?)?;
            let server_ns = c.u64()?;
            let design_hash = c.key()?;
            let len = to_usize(c.u32()?);
            let blob = c.take(len)?.to_vec();
            Reply::FillOk {
                status,
                server_ns,
                design_hash,
                blob,
            }
        }
        MSG_DENSITY_OK => Reply::DensityOk {
            design_hash: c.key()?,
            analysis: (c.f64()?, c.f64()?, c.f64()?, c.f64()?),
        },
        MSG_VERIFY_OK => {
            let design_hash = c.key()?;
            let checked = c.u64()?;
            let count = to_usize(c.u32()?);
            if count > payload.len() / 4 + 1 {
                return Err(ProtocolError::bad("violation count exceeds frame"));
            }
            let mut violations = Vec::with_capacity(count);
            for _ in 0..count {
                violations.push(c.string()?);
            }
            Reply::VerifyOk {
                design_hash,
                checked,
                violations,
            }
        }
        MSG_BUSY => Reply::Busy { inflight: c.u32()? },
        MSG_ERR => Reply::Err {
            code: c.u8()?,
            message: c.string()?,
        },
        MSG_SHUTDOWN_OK => Reply::ShutdownOk,
        other => return Err(ProtocolError::bad(format!("reply type {other:#x}"))),
    };
    c.done()?;
    Ok(reply)
}

// --------------------------------------------------------- outcome blob

/// Serializes a [`FlowOutcome`] into the deterministic reply blob.
///
/// Every field except wall-clock `solve_time` is included; all floats go
/// as IEEE bit patterns. Two outcomes that compare equal (same features,
/// same accumulated impact) therefore produce byte-identical blobs —
/// this is the payload the bit-identical serving invariant is asserted
/// on, and what `pilfill request --dump` writes.
pub fn encode_outcome_blob(outcome: &FlowOutcome) -> Vec<u8> {
    let mut out = Vec::new();
    put_string(&mut out, outcome.method);
    out.extend_from_slice(&outcome.budget_total.to_le_bytes());
    out.extend_from_slice(&outcome.placed_features.to_le_bytes());
    out.extend_from_slice(&outcome.shortfall.to_le_bytes());
    out.extend_from_slice(&(outcome.tiles as u64).to_le_bytes());
    for a in [&outcome.density_before, &outcome.density_after] {
        for v in [
            a.min_window_density,
            a.max_window_density,
            a.variation,
            a.mean_window_density,
        ] {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    let impact = &outcome.impact;
    for v in [impact.total_delay, impact.weighted_delay, impact.total_cap] {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&impact.free_features.to_le_bytes());
    out.extend_from_slice(&impact.unlocated_features.to_le_bytes());
    out.extend_from_slice(&len_u32(impact.per_net_delay.len()).to_le_bytes());
    for &v in &impact.per_net_delay {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&len_u32(impact.per_net_cap.len()).to_le_bytes());
    for &v in &impact.per_net_cap {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&len_u32(outcome.features.len()).to_le_bytes());
    for f in &outcome.features {
        out.extend_from_slice(&f.x.to_le_bytes());
        out.extend_from_slice(&f.y.to_le_bytes());
    }
    out
}

/// Applies edit ops to a design (in order), mirroring what the server
/// does for [`DesignRef::Edit`].
///
/// # Errors
///
/// Returns a message if an op's net/segment index is out of range.
pub fn apply_edits(design: &mut Design, ops: &[EditOp]) -> Result<(), String> {
    for op in ops {
        match *op {
            EditOp::DupSink { net } => {
                let net = design
                    .nets
                    .get_mut(to_usize(net))
                    .ok_or_else(|| format!("dup-sink: no net {net}"))?;
                let sink = *net
                    .sinks
                    .first()
                    .ok_or_else(|| format!("dup-sink: net {} has no sinks", net.name))?;
                net.sinks.push(sink);
            }
            EditOp::WidenSegment { net, seg, delta } => {
                let net = design
                    .nets
                    .get_mut(to_usize(net))
                    .ok_or_else(|| format!("widen: no net {net}"))?;
                let seg = net
                    .segments
                    .get_mut(to_usize(seg))
                    .ok_or_else(|| format!("widen: net {} has no segment {seg}", net.name))?;
                seg.width = seg
                    .width
                    .checked_add(delta)
                    .filter(|&w| w > 0)
                    .ok_or_else(|| "widen: resulting width not positive".to_string())?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shorthand key for wire tests.
    fn key(b: u8) -> DesignKey {
        DesignKey([b; 32])
    }

    #[test]
    fn design_key_displays_as_hex() {
        let mut bytes = [0u8; 32];
        bytes[0] = 0xde;
        bytes[1] = 0xad;
        let shown = DesignKey(bytes).to_string();
        assert_eq!(shown.len(), 64);
        assert!(shown.starts_with("dead"));
        assert!(shown.ends_with("00"));
    }

    #[test]
    fn requests_roundtrip() {
        let requests = [
            Request::Fill {
                design: DesignRef::Inline("design x\n".into()),
                params: FillParams::new(8_000, 2).expect("valid window"),
            },
            Request::Fill {
                design: DesignRef::Edit {
                    base: key(77),
                    ops: vec![
                        EditOp::DupSink { net: 3 },
                        EditOp::WidenSegment {
                            net: 1,
                            seg: 2,
                            delta: -40,
                        },
                    ],
                },
                params: FillParams::new(16_000, 4).expect("valid window"),
            },
            Request::Density {
                design: DesignRef::Hash(key(0xbe)),
                layer: 1,
                window: 8_000,
                r: 2,
            },
            Request::Verify {
                design: DesignRef::Hash(key(9)),
                layer: 0,
                features: vec![(100, 200), (-5, 7)],
            },
            Request::Shutdown,
        ];
        for req in &requests {
            let bytes = encode_request(req);
            let back = decode_request(&bytes).expect("roundtrip decode");
            assert_eq!(&back, req);
        }
    }

    #[test]
    fn replies_roundtrip() {
        let replies = [
            Reply::FillOk {
                status: FillStatus::RebuildIncr,
                server_ns: 12_345,
                design_hash: key(42),
                blob: vec![1, 2, 3, 4],
            },
            Reply::DensityOk {
                design_hash: key(7),
                analysis: (0.1, 0.4, 0.3, 0.25),
            },
            Reply::VerifyOk {
                design_hash: key(8),
                checked: 120,
                violations: vec!["overlap at (3, 4)".into()],
            },
            Reply::Busy { inflight: 9 },
            Reply::Err {
                code: ERR_DESIGN,
                message: "parse error".into(),
            },
            Reply::ShutdownOk,
        ];
        for reply in &replies {
            let bytes = encode_reply(reply);
            let back = decode_reply(&bytes).expect("roundtrip decode");
            assert_eq!(&back, reply);
        }
    }

    #[test]
    fn truncated_and_trailing_frames_are_rejected() {
        let bytes = encode_request(&Request::Density {
            design: DesignRef::Hash(key(1)),
            layer: 0,
            window: 8_000,
            r: 2,
        });
        assert!(decode_request(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_request(&extra).is_err());
        assert!(decode_request(&[0xff]).is_err());
        assert!(decode_reply(&[0x42]).is_err());
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("write");
        write_frame(&mut buf, b"").expect("write");
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r).expect("read").as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(read_frame(&mut r).expect("read").as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).expect("read"), None);
    }

    #[test]
    fn oversized_frame_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn edit_hash_depends_on_ops_and_base() {
        let ops = [EditOp::DupSink { net: 0 }];
        let a = edit_hash(key(1), &ops);
        assert_eq!(a, edit_hash(key(1), &ops));
        assert_ne!(a, edit_hash(key(2), &ops));
        assert_ne!(a, edit_hash(key(1), &[EditOp::DupSink { net: 1 }]));
        assert_ne!(a, edit_hash(key(1), &[]));
    }

    /// A `Read` that yields `data` one byte at a time and fails with a
    /// timeout before every read — the worst-case `SO_RCVTIMEO` stream.
    struct Stutter {
        data: Vec<u8>,
        pos: usize,
        ready: bool,
    }

    impl Read for Stutter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "stutter",
                ));
            }
            self.ready = false;
            if self.pos == self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_reader_survives_timeouts_at_every_byte_boundary() {
        // Two frames; a timeout fires before every single byte. A naive
        // reader would discard partial prefixes/payloads and desync.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").expect("write");
        write_frame(&mut wire, b"").expect("write");
        let mut stream = Stutter {
            data: wire,
            pos: 0,
            ready: false,
        };
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        let mut idle = 0;
        let mut pending = 0;
        loop {
            match reader.poll(&mut stream).expect("poll") {
                FrameProgress::Frame(p) => frames.push(p),
                FrameProgress::Idle => idle += 1,
                FrameProgress::Pending => pending += 1,
                FrameProgress::Eof => break,
            }
        }
        assert_eq!(frames, vec![b"hello".to_vec(), Vec::new()]);
        // Mid-frame stalls must be reported as Pending, never Idle: an
        // Idle verdict licenses the caller to believe no frame is in
        // flight.
        assert!(pending > 0, "mid-frame timeouts must surface as Pending");
        assert!(idle > 0, "boundary timeouts must surface as Idle");
    }

    #[test]
    fn frame_reader_reports_eof_inside_a_frame_as_an_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").expect("write");
        wire.truncate(6); // length prefix + 2 payload bytes
        let mut stream = Stutter {
            data: wire,
            pos: 0,
            ready: false,
        };
        let mut reader = FrameReader::new();
        let err = loop {
            match reader.poll(&mut stream) {
                Ok(FrameProgress::Idle | FrameProgress::Pending) => {}
                Ok(other) => panic!("expected an error, got {other:?}"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}
