//! End-to-end tests of the fill service: concurrent clients over unix
//! and TCP sockets must receive outcome blobs bit-identical to the
//! one-shot flow, at every lane count and under randomized request
//! interleavings; the cache must stay correct under eviction; and a
//! mid-request client disconnect must not wedge the shared pool.

use pilfill_core::flow::run_flow;
use pilfill_core::methods::{FillMethod, GreedyFill, IlpTwo};
use pilfill_layout::synth::{synthesize, SynthConfig};
use pilfill_layout::Design;
use pilfill_serve::protocol::{
    apply_edits, design_hash, encode_outcome_blob, DesignKey, DesignRef, EditOp, FillParams,
    FillStatus, Reply, Request,
};
use pilfill_serve::{Client, ServeOptions, Server};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Fresh, collision-free unix socket path for one test server.
fn unix_sock_path(tag: &str) -> String {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir()
        .join(format!(
            "pilfill-serve-{}-{tag}-{n}.sock",
            std::process::id()
        ))
        .to_string_lossy()
        .into_owned()
}

/// Spawns a server; returns its connect spec and the join handle.
fn spawn_server(
    spec: &str,
    opts: &ServeOptions,
) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(spec, opts).expect("bind");
    let addr = server.addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn method_of(idx: u8) -> &'static dyn FillMethod {
    match idx {
        1 => &GreedyFill,
        3 => &IlpTwo,
        other => panic!("test method table has no index {other}"),
    }
}

/// The reference result: the one-shot (build + serial run) flow.
fn one_shot_blob(design: &Design, params: &FillParams) -> Vec<u8> {
    let config = params.to_config().expect("valid params");
    let outcome = run_flow(design, &config, method_of(params.method)).expect("one-shot flow");
    encode_outcome_blob(&outcome)
}

fn expect_fill_ok(reply: Reply) -> (FillStatus, Vec<u8>) {
    match reply {
        Reply::FillOk { status, blob, .. } => (status, blob),
        other => panic!("expected FillOk, got {other:?}"),
    }
}

/// xorshift64* — deterministic per-client jitter for randomized
/// interleavings without pulling RNG machinery into the tests.
struct Jitter(u64);

impl Jitter {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn sleep_upto(&mut self, ms: u64) {
        std::thread::sleep(Duration::from_millis(self.next() % ms.max(1)));
    }
}

/// Net indices eligible for a dup-sink edit.
fn nets_with_sinks(design: &Design) -> Vec<u32> {
    design
        .nets
        .iter()
        .enumerate()
        .filter(|(_, n)| !n.sinks.is_empty())
        .map(|(i, _)| u32::try_from(i).expect("net index"))
        .collect()
}

/// The acceptance matrix: ≥ 8 concurrent clients, unix + TCP, lane
/// counts 1/2/8, randomized interleavings — every reply bit-identical
/// to the one-shot flow for the same request.
#[test]
fn concurrent_clients_bit_identical_over_unix_and_tcp_at_lanes_1_2_8() {
    const CLIENTS: usize = 9;
    let design = synthesize(&SynthConfig::small_test(7));
    let text = design.to_text();
    let base_hash = design_hash(&design);
    let params = FillParams::new(8_000, 2).expect("valid window");
    let base_blob = one_shot_blob(&design, &params);
    let eligible = nets_with_sinks(&design);
    assert!(!eligible.is_empty(), "test design needs sinks");

    // Per-client edited designs and their expected blobs.
    let edits: Vec<(Vec<EditOp>, Vec<u8>)> = (0..CLIENTS)
        .map(|c| {
            let ops = vec![EditOp::DupSink {
                net: eligible[c % eligible.len()],
            }];
            let mut edited = design.clone();
            apply_edits(&mut edited, &ops).expect("valid edit");
            let blob = one_shot_blob(&edited, &params);
            (ops, blob)
        })
        .collect();
    let edits = Arc::new(edits);
    let base_blob = Arc::new(base_blob);
    let text = Arc::new(text);

    for lanes in [1usize, 2, 8] {
        let opts = ServeOptions {
            lanes,
            ..ServeOptions::default()
        };
        let unix = unix_sock_path(&format!("conc{lanes}"));
        for spec in [format!("unix:{unix}"), "127.0.0.1:0".to_string()] {
            let (addr, server) = spawn_server(&spec, &opts);
            let workers: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let addr = addr.clone();
                    let params = params.clone();
                    let edits = Arc::clone(&edits);
                    let base_blob = Arc::clone(&base_blob);
                    let text = Arc::clone(&text);
                    std::thread::spawn(move || {
                        let mut jitter = Jitter(0x9e37_79b9 ^ (c as u64) << 8 ^ lanes as u64);
                        let mut client =
                            Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");
                        jitter.sleep_upto(5);
                        // 1: inline upload (cold or racing-warm).
                        let reply = client
                            .fill_retry(
                                &DesignRef::Inline((*text).clone()),
                                &params,
                                Duration::from_secs(10),
                            )
                            .expect("inline fill");
                        let (_, blob) = expect_fill_ok(reply);
                        assert_eq!(blob, *base_blob, "inline blob (lanes {lanes})");
                        jitter.sleep_upto(8);
                        // 2: per-client edit against the shared base.
                        let (ops, want) = &edits[c];
                        let reply = client
                            .fill_retry(
                                &DesignRef::Edit {
                                    base: base_hash,
                                    ops: ops.clone(),
                                },
                                &params,
                                Duration::from_secs(10),
                            )
                            .expect("edit fill");
                        let (_, blob) = expect_fill_ok(reply);
                        assert_eq!(&blob, want, "edit blob (lanes {lanes}, client {c})");
                        jitter.sleep_upto(8);
                        // 3: repeat the base by hash.
                        let reply = client
                            .fill_retry(
                                &DesignRef::Hash(base_hash),
                                &params,
                                Duration::from_secs(10),
                            )
                            .expect("hash fill");
                        let (_, blob) = expect_fill_ok(reply);
                        assert_eq!(blob, *base_blob, "hash blob (lanes {lanes})");
                    })
                })
                .collect();
            for w in workers {
                w.join().expect("client thread");
            }
            let mut c = Client::connect(&addr).expect("connect for shutdown");
            assert!(c.shutdown().expect("shutdown"));
            server.join().expect("server thread").expect("server run");
        }
    }
}

/// Cold → warm-replay → incremental-rebuild statuses, every blob
/// byte-exact against the one-shot flow.
#[test]
fn warm_repeat_and_edit_replay_are_bitwise_exact() {
    let design = synthesize(&SynthConfig::small_test(21));
    let params = FillParams::new(8_000, 2).expect("valid window");
    let base_hash = design_hash(&design);
    let base_blob = one_shot_blob(&design, &params);
    let ops = vec![EditOp::DupSink {
        net: nets_with_sinks(&design)[0],
    }];
    let mut edited = design.clone();
    apply_edits(&mut edited, &ops).expect("valid edit");
    let edited_blob = one_shot_blob(&edited, &params);

    let (addr, server) = spawn_server(
        &format!("unix:{}", unix_sock_path("warm")),
        &ServeOptions::default(),
    );
    let mut client = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");

    let (status, blob) = expect_fill_ok(
        client
            .fill(DesignRef::Inline(design.to_text()), params.clone())
            .expect("cold fill"),
    );
    assert_eq!(status, FillStatus::Cold);
    assert_eq!(blob, base_blob);

    let (status, blob) = expect_fill_ok(
        client
            .fill(DesignRef::Hash(base_hash), params.clone())
            .expect("warm fill"),
    );
    assert_eq!(
        status,
        FillStatus::Warm,
        "repeat must replay the cached context"
    );
    assert_eq!(
        blob, base_blob,
        "warm replay must be byte-identical to cold"
    );

    let edit_ref = DesignRef::Edit {
        base: base_hash,
        ops: ops.clone(),
    };
    let (status, blob) = expect_fill_ok(
        client
            .fill(edit_ref.clone(), params.clone())
            .expect("edit fill"),
    );
    assert_eq!(
        status,
        FillStatus::RebuildIncr,
        "a sink-duplication edit must take the incremental rebuild path"
    );
    assert_eq!(
        blob, edited_blob,
        "rebuild + partial re-solve must match one-shot"
    );

    let (status, blob) = expect_fill_ok(client.fill(edit_ref, params.clone()).expect("warm edit"));
    assert_eq!(status, FillStatus::Warm, "repeated edit must be a warm hit");
    assert_eq!(blob, edited_blob);

    assert!(client.shutdown().expect("shutdown"));
    server.join().expect("server thread").expect("server run");
}

/// A context LRU of capacity 1 evicts on every alternation but still
/// serves correct (cold) results.
#[test]
fn lru_capacity_one_stays_correct_under_eviction() {
    let a = synthesize(&SynthConfig::small_test(7));
    let b = synthesize(&SynthConfig::small_test(9));
    let params = FillParams::new(8_000, 2).expect("valid window");
    let blob_a = one_shot_blob(&a, &params);
    let blob_b = one_shot_blob(&b, &params);

    let opts = ServeOptions {
        ctx_cache_cap: 1,
        ..ServeOptions::default()
    };
    let (addr, server) = spawn_server(&format!("unix:{}", unix_sock_path("lru1")), &opts);
    let mut client = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");

    let (status, blob) = expect_fill_ok(
        client
            .fill(DesignRef::Inline(a.to_text()), params.clone())
            .expect("fill a"),
    );
    assert_eq!(status, FillStatus::Cold);
    assert_eq!(blob, blob_a);

    let (status, blob) = expect_fill_ok(
        client
            .fill(DesignRef::Inline(b.to_text()), params.clone())
            .expect("fill b"),
    );
    assert_eq!(status, FillStatus::Cold, "b must evict a at capacity 1");
    assert_eq!(blob, blob_b);

    let (status, blob) = expect_fill_ok(
        client
            .fill(DesignRef::Hash(design_hash(&a)), params.clone())
            .expect("fill a again"),
    );
    assert_eq!(
        status,
        FillStatus::Cold,
        "a was evicted — must cold-build again"
    );
    assert_eq!(blob, blob_a, "eviction must never change results");

    assert!(client.shutdown().expect("shutdown"));
    server.join().expect("server thread").expect("server run");
}

/// A client that vanishes mid-request must not wedge the shared pool:
/// later clients still get correct replies and shutdown stays clean.
#[test]
fn mid_request_disconnect_does_not_wedge_the_pool() {
    let design = synthesize(&SynthConfig::small_test(11));
    let params = FillParams::new(8_000, 2).expect("valid window");
    let blob = one_shot_blob(&design, &params);

    let path = unix_sock_path("drop");
    let (addr, server) = spawn_server(&format!("unix:{path}"), &ServeOptions::default());

    // Hand-roll a doomed client: send a fill request, drop the socket
    // without reading the reply.
    {
        use std::os::unix::net::UnixStream;
        let mut doomed = UnixStream::connect(&path).expect("connect doomed client");
        let req = Request::Fill {
            design: DesignRef::Inline(design.to_text()),
            params: params.clone(),
        };
        pilfill_serve::protocol::write_frame(
            &mut doomed,
            &pilfill_serve::protocol::encode_request(&req),
        )
        .expect("send doomed request");
        // Dropping here closes the socket while the server may still be
        // solving tiles.
    }

    // The pool must keep serving: several follow-up requests, all exact.
    let mut client = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");
    for _ in 0..3 {
        let reply = client
            .fill_retry(
                &DesignRef::Inline(design.to_text()),
                &params,
                Duration::from_secs(10),
            )
            .expect("post-disconnect fill");
        let (_, got) = expect_fill_ok(reply);
        assert_eq!(got, blob, "results after a dropped client must be exact");
    }

    assert!(client.shutdown().expect("shutdown"));
    server.join().expect("server thread").expect("server run");
    assert!(
        !std::path::Path::new(&path).exists(),
        "unix socket must be removed on clean shutdown"
    );
}

/// A client that stalls longer than the server's 100ms poll timeout
/// *mid-frame* — inside the length prefix and inside the payload — must
/// still be served correctly, twice on the same connection. With a
/// non-resumable frame reader the timeout discards the partial bytes
/// and later payload bytes get parsed as a length prefix, desyncing
/// every subsequent reply.
#[test]
fn mid_frame_stalls_longer_than_the_poll_timeout_do_not_desync() {
    use pilfill_serve::protocol::{decode_reply, encode_request, read_frame, write_frame};
    use std::io::Write as _;
    use std::os::unix::net::UnixStream;

    let design = synthesize(&SynthConfig::small_test(17));
    let params = FillParams::new(8_000, 2).expect("valid window");
    let blob = one_shot_blob(&design, &params);
    let path = unix_sock_path("slow");
    let (addr, server) = spawn_server(&format!("unix:{path}"), &ServeOptions::default());

    let mut wire = Vec::new();
    write_frame(
        &mut wire,
        &encode_request(&Request::Fill {
            design: DesignRef::Inline(design.to_text()),
            params: params.clone(),
        }),
    )
    .expect("encode frame");

    let mut stream = UnixStream::connect(&path).expect("connect");
    // Stall past several poll timeouts at the nastiest offsets: 2 bytes
    // into the 4-byte length prefix, then a few bytes into the payload.
    let mut at = 0;
    for cut in [2usize, 7, wire.len() / 2] {
        stream.write_all(&wire[at..cut]).expect("trickle");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(250));
        at = cut;
    }
    stream.write_all(&wire[at..]).expect("finish frame");
    let reply = decode_reply(&read_frame(&mut stream).expect("reply").expect("frame"))
        .expect("decode reply");
    let (_, got) = expect_fill_ok(reply);
    assert_eq!(got, blob, "trickled request must be served exactly");

    // The connection must still be in phase: a second request (sent
    // whole) gets a second exact reply.
    stream.write_all(&wire).expect("second request");
    let reply = decode_reply(&read_frame(&mut stream).expect("reply").expect("frame"))
        .expect("decode second reply");
    let (status, got) = expect_fill_ok(reply);
    assert_eq!(got, blob, "second reply proves the stream stayed in sync");
    assert_eq!(status, FillStatus::Warm, "repeat on a cached design");
    drop(stream);

    let mut client = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");
    assert!(client.shutdown().expect("shutdown"));
    server.join().expect("server thread").expect("server run");
}

/// Density and verify requests match their library-level equivalents.
#[test]
fn density_and_verify_requests_match_library_results() {
    use pilfill_core::check_fill;
    use pilfill_core::FillFeature;
    use pilfill_density::{DensityMap, FixedDissection};
    use pilfill_layout::LayerId;

    let design = synthesize(&SynthConfig::small_test(5));
    let (addr, server) = spawn_server(
        &format!("unix:{}", unix_sock_path("dv")),
        &ServeOptions::default(),
    );
    let mut client = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");

    let dissection = FixedDissection::new(design.die, 8_000, 2).expect("dissect");
    let want = DensityMap::compute(&design, LayerId(0), &dissection).analyze();
    let reply = client
        .request(&Request::Density {
            design: DesignRef::Inline(design.to_text()),
            layer: 0,
            window: 8_000,
            r: 2,
        })
        .expect("density request");
    match reply {
        Reply::DensityOk { analysis, .. } => {
            assert_eq!(analysis.0.to_bits(), want.min_window_density.to_bits());
            assert_eq!(analysis.1.to_bits(), want.max_window_density.to_bits());
            assert_eq!(analysis.2.to_bits(), want.variation.to_bits());
            assert_eq!(analysis.3.to_bits(), want.mean_window_density.to_bits());
        }
        other => panic!("expected DensityOk, got {other:?}"),
    }

    // Deliberately illegal features (on top of a wire) plus a far-corner
    // one; the served report must mirror check_fill verbatim.
    let features = vec![
        (design.die.left, design.die.bottom),
        (design.die.right + 10, 0),
    ];
    let local: Vec<FillFeature> = features
        .iter()
        .map(|&(x, y)| FillFeature { x, y })
        .collect();
    let want = check_fill(&design, LayerId(0), &local);
    let reply = client
        .request(&Request::Verify {
            design: DesignRef::Hash(design_hash(&design)),
            layer: 0,
            features,
        })
        .expect("verify request");
    match reply {
        Reply::VerifyOk {
            checked,
            violations,
            ..
        } => {
            assert_eq!(checked, u64::try_from(want.checked).expect("checked"));
            let want: Vec<String> = want.violations.iter().map(|v| v.to_string()).collect();
            assert_eq!(violations, want);
        }
        other => panic!("expected VerifyOk, got {other:?}"),
    }

    assert!(client.shutdown().expect("shutdown"));
    server.join().expect("server thread").expect("server run");
}

/// Beyond `max_conns` live connections the accept loop answers `Busy`
/// and turns the connection away instead of spawning threads without
/// bound; a freed slot serves fresh connections again, exactly.
#[test]
fn connection_cap_turns_excess_connections_away_with_busy() {
    let design = synthesize(&SynthConfig::small_test(13));
    let params = FillParams::new(8_000, 2).expect("valid window");
    let blob = one_shot_blob(&design, &params);
    let opts = ServeOptions {
        max_conns: 1,
        ..ServeOptions::default()
    };
    let (addr, server) = spawn_server(&format!("unix:{}", unix_sock_path("cap")), &opts);

    // Client A occupies the only slot (a served round-trip proves the
    // accept loop registered the connection).
    let mut a = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect a");
    let (_, got) = expect_fill_ok(
        a.fill_retry(
            &DesignRef::Inline(design.to_text()),
            &params,
            Duration::from_secs(10),
        )
        .expect("fill a"),
    );
    assert_eq!(got, blob);

    // While A lives no other connection may be served: B either reads
    // the accept loop's Busy frame or finds its socket already closed.
    let mut b = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect b");
    match b.fill(DesignRef::Inline(design.to_text()), params.clone()) {
        Ok(Reply::Busy { .. }) | Err(_) => {}
        Ok(other) => panic!("capped connection must not be served, got {other:?}"),
    }

    // Dropping A frees the slot; a fresh connection gets served again.
    drop(a);
    drop(b);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut client = loop {
        let mut c = Client::connect_retry(&addr, Duration::from_secs(5)).expect("reconnect");
        match c.fill(DesignRef::Inline(design.to_text()), params.clone()) {
            Ok(Reply::FillOk { blob: got, .. }) => {
                assert_eq!(got, blob, "a freed slot must serve exact results again");
                break c;
            }
            Ok(Reply::Busy { .. }) | Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Ok(other) => panic!("unexpected reply after freeing the slot: {other:?}"),
            Err(e) => panic!("slot never freed within the deadline: {e}"),
        }
    };

    assert!(client.shutdown().expect("shutdown"));
    server.join().expect("server thread").expect("server run");
}

/// Unknown hashes and malformed frames produce error replies, not dead
/// connections.
#[test]
fn unknown_design_and_garbage_frames_get_error_replies() {
    let (addr, server) = spawn_server(
        &format!("unix:{}", unix_sock_path("err")),
        &ServeOptions::default(),
    );
    let mut client = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");

    let params = FillParams::new(8_000, 2).expect("valid window");
    let reply = client
        .fill(DesignRef::Hash(DesignKey([0xde; 32])), params)
        .expect("fill by unknown hash");
    match reply {
        Reply::Err { code, .. } => {
            assert_eq!(code, pilfill_serve::protocol::ERR_UNKNOWN_DESIGN);
        }
        other => panic!("expected Err reply, got {other:?}"),
    }

    // The connection survives the error and still shuts down cleanly.
    assert!(client.shutdown().expect("shutdown"));
    server.join().expect("server thread").expect("server run");
}
