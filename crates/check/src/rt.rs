//! The cooperative scheduler and interleaving explorer.
//!
//! # How an execution runs
//!
//! A model is a closure using the shadow primitives in [`crate::sync`] and
//! [`crate::thread`]. [`Explorer::explore`] runs it many times; in each
//! execution the model's threads are real OS threads (reused across
//! executions through a lane pool), but a *baton* protocol ensures exactly
//! one of them runs at a time: before every visible operation (atomic
//! access, mutex, condvar, [`crate::sync::RaceCell`] access, spawn, join)
//! the thread declares the operation and parks; the scheduler picks which
//! declared operation executes next. The decision is made exactly once per
//! executed operation, by the thread currently holding the baton when it
//! arrives at its next operation (or exits). Every decision with more than
//! one *enabled* candidate branches the interleaving space being explored.
//!
//! Blocking is modeled by *enabledness*, not by retrying: a thread whose
//! pending operation cannot execute (lock a held mutex, reacquire before
//! its condvar ticket is notified, join an unfinished thread) is simply
//! not a candidate, so a state where no thread is enabled is a detected
//! deadlock, reported with the schedule that reached it.
//!
//! # Happens-before and races
//!
//! Threads carry vector clocks ([`crate::clock::Clock`]). Release stores
//! publish the storing thread's clock on the atomic; acquire loads join
//! it; `Relaxed` stores publish nothing (and reset the location's release
//! history, as a relaxed store heads an empty release sequence); relaxed
//! RMWs preserve it (they continue the release sequence). Mutexes carry
//! the clock of their last critical section. Plain data is modeled with
//! [`crate::sync::RaceCell`], whose accesses *check* clocks: a read of a
//! write that is not ordered happens-before the reader is reported as a
//! data race — this is exactly how a `Release`-to-`Relaxed` weakening in a
//! publication protocol becomes a caught violation rather than a silent
//! source of stale reads on weak hardware.
//!
//! The model is interleaving-atomic: loads observe the latest store, so
//! weak-memory *value* speculation (an old value satisfying coherence) is
//! not explored — synchronization errors surface through the clock checks
//! instead. `SeqCst` is treated as `AcqRel` (no global order is modeled).
//! Condvars have no spurious wakeups; `notify_one` wakes the lowest
//! waiting thread id. These simplifications are documented in DESIGN.md.
//!
//! # Exploration strategies
//!
//! [`Strategy::Exhaustive`] runs a depth-first search over decision
//! points, bounded by [`Config::preemption_bound`] (switching away from a
//! still-enabled thread costs one preemption; forced switches are free)
//! and pruned with DPOR-style sleep sets: after a branch is fully
//! explored, its thread sleeps for the node's remaining siblings until a
//! dependent operation executes, so schedules that merely commute
//! independent operations are not revisited. [`Strategy::Random`] draws
//! decisions from a seeded in-repo PRNG, making huge spaces samplable and
//! any found violation reproducible from the seed.

use crate::clock::{Clock, MAX_THREADS};
use pilfill_prng::Xoshiro256PlusPlus;
use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashSet, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Model thread id; the main (submitting) thread is always 0.
pub type Tid = usize;

/// Pseudo object id meaning "depends on everything" (spawn, and any
/// operation whose effects are not tied to one object).
const GLOBAL_OBJ: usize = usize::MAX;

/// Base of the per-thread pseudo object ids used by start/finish/join so
/// that join/finish pairs on the same thread are dependent operations.
const THREAD_OBJ_BASE: usize = usize::MAX - 64;

fn thread_obj(tid: Tid) -> usize {
    THREAD_OBJ_BASE + tid
}

/// The kind of a visible operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    /// First scheduling of a spawned thread.
    Start,
    /// Thread termination (wakes joiners).
    Finish,
    /// Thread creation.
    Spawn,
    /// Join on a finished thread.
    Join,
    /// Atomic load; `acquire` joins the location's release clock.
    AtomicLoad {
        /// Acquire semantics requested.
        acquire: bool,
    },
    /// Atomic store; `release` publishes the thread clock.
    AtomicStore {
        /// Release semantics requested.
        release: bool,
    },
    /// Atomic read-modify-write.
    AtomicRmw {
        /// Acquire semantics requested.
        acquire: bool,
        /// Release semantics requested.
        release: bool,
    },
    /// Mutex acquisition (enabled only while free).
    MutexLock,
    /// Mutex release.
    MutexUnlock,
    /// Condvar wait phase 1: release the mutex and enqueue.
    CvWait,
    /// Condvar wait phase 2: reacquire after notification.
    CvReacquire,
    /// Wake all waiters.
    CvNotifyAll,
    /// Wake the lowest-id unnotified waiter.
    CvNotifyOne,
    /// `RaceCell` read (race-checked).
    CellRead,
    /// `RaceCell` write (race-checked).
    CellWrite,
}

impl OpKind {
    fn is_pure_read(self) -> bool {
        matches!(self, OpKind::AtomicLoad { .. } | OpKind::CellRead)
    }
}

/// A declared visible operation: what a thread will do when scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct OpDesc {
    /// Primary object the operation touches.
    pub obj: usize,
    /// Secondary object (a condvar wait also touches its mutex).
    pub obj2: Option<usize>,
    /// Operation kind.
    pub kind: OpKind,
}

impl OpDesc {
    pub(crate) fn new(obj: usize, kind: OpKind) -> Self {
        Self {
            obj,
            obj2: None,
            kind,
        }
    }

    pub(crate) fn with_obj2(obj: usize, obj2: usize, kind: OpKind) -> Self {
        Self {
            obj,
            obj2: Some(obj2),
            kind,
        }
    }
}

/// Conservative dependence relation for sleep-set pruning: operations are
/// independent only when they provably commute (different objects, or
/// both pure reads of the same object). Anything touching the global
/// pseudo-object is dependent with everything — pruning stays sound.
fn dependent(a: &OpDesc, b: &OpDesc) -> bool {
    if a.obj == GLOBAL_OBJ || b.obj == GLOBAL_OBJ {
        return true;
    }
    let objs_a = [Some(a.obj), a.obj2];
    let objs_b = [Some(b.obj), b.obj2];
    for oa in objs_a.into_iter().flatten() {
        for ob in objs_b.into_iter().flatten() {
            if oa == ob && !(a.kind.is_pure_read() && b.kind.is_pure_read()) {
                return true;
            }
        }
    }
    false
}

/// Argument payload for a visible operation.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OpArg {
    None,
    Store(u64),
    Add(u64),
    Sub(u64),
    Swap(u64),
    Cx { expect: u64, new: u64 },
}

/// Result payload of a visible operation.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OpOut {
    Unit,
    Val(u64),
    Cx(Result<u64, u64>),
}

impl OpOut {
    pub(crate) fn val(self) -> u64 {
        match self {
            OpOut::Val(v) => v,
            // Dummy outputs (teardown path) read as zero.
            _ => 0,
        }
    }
}

/// State of one synchronization object.
#[derive(Debug)]
enum ObjSt {
    Atomic { value: u64, sync: Clock },
    Mutex { held_by: Option<Tid>, clock: Clock },
    Condvar,
    Cell { writer: Clock, readers: Clock },
}

#[derive(Debug, Clone, Copy)]
struct CvTicket {
    cv: usize,
    mutex: usize,
    notified: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Run {
    Active,
    Finished,
}

struct ThreadSt {
    run: Run,
    /// Scheduler picked this thread to execute its declared operation.
    granted: bool,
    /// The operation this thread is parked on (None while computing).
    next_op: Option<OpDesc>,
    clock: Clock,
    cv_ticket: Option<CvTicket>,
    /// Real panic payload captured by the lane wrapper, handed to join.
    payload: Option<Box<dyn Any + Send>>,
}

impl ThreadSt {
    fn new(clock: Clock) -> Self {
        Self {
            run: Run::Active,
            granted: false,
            next_op: None,
            clock,
            cv_ticket: None,
            payload: None,
        }
    }
}

/// Why an execution stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EndKind {
    /// Sleep-set pruning: this schedule commutes with an explored one.
    Pruned,
    /// A violation was recorded; everything unwinds.
    Violated,
}

/// Token unwound through model threads to tear an execution down. Raised
/// with `resume_unwind` so the global panic hook stays silent.
struct AbortToken;

/// One decision point in the DFS tree.
#[derive(Debug, Clone)]
struct Node {
    /// Schedulable (enabled, not sleeping) threads with their pending
    /// operations at the node's creation, in deterministic order:
    /// arriving thread first, then by id.
    candidates: Vec<(Tid, OpDesc)>,
    /// Index of the branch currently being explored.
    chosen: usize,
    /// Fully-explored branches; sleep-set entries for later siblings.
    explored: Vec<(Tid, OpDesc)>,
    /// The thread whose arrival created this decision point.
    arriving: Tid,
    /// Whether that thread was itself enabled (switching away from it
    /// then counts as a preemption).
    arriving_enabled: bool,
    /// Cumulative preemptions on the path above this node.
    preempts_at_entry: u32,
}

/// A found property violation with the schedule that reached it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Human-readable description (deadlock, data race, failed assert...).
    pub message: String,
    /// The sequence of thread ids chosen at each decision of the schedule.
    pub trace: Vec<Tid>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [schedule:", self.message)?;
        for t in &self.trace {
            write!(f, " {t}")?;
        }
        write!(f, "]")
    }
}

///// Counters accumulated over one [`Explorer::explore`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// Completed executions (each is one explored interleaving).
    pub interleavings: u64,
    /// Distinct schedules among them (equal to `interleavings` for the
    /// exhaustive strategy; deduplicated by schedule hash for random).
    pub distinct: u64,
    /// Executions cut short by sleep-set pruning (redundant schedules).
    pub pruned: u64,
    /// Total visible operations executed.
    pub ops: u64,
    /// The exhaustive strategy ran out of schedules (space fully covered
    /// within the preemption bound) before hitting the budget.
    pub complete: bool,
}

/// How the explorer picks branches at decision points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Depth-first over all decision sequences, with sleep-set pruning
    /// and the configured preemption bound.
    Exhaustive,
    /// Seeded uniform-random decisions; reproducible from the seed.
    Random {
        /// PRNG seed; the same seed explores the same schedules.
        seed: u64,
    },
}

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Branch selection strategy.
    pub strategy: Strategy,
    /// Maximum executions to run (completed + pruned for exhaustive).
    pub budget: usize,
    /// Preemption bound for [`Strategy::Exhaustive`] (`None` = unbounded).
    pub preemption_bound: Option<u32>,
    /// Per-execution visible-operation cap (livelock backstop; exceeding
    /// it is reported as a violation).
    pub max_ops: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            strategy: Strategy::Exhaustive,
            budget: 50_000,
            preemption_bound: Some(2),
            max_ops: 20_000,
        }
    }
}

/// The result of exploring one model.
#[derive(Debug, Clone)]
#[must_use = "an exploration outcome carries the violation verdict"]
pub struct Outcome {
    /// Exploration counters.
    pub stats: Stats,
    /// First violation found, if any (exploration stops at the first).
    pub violation: Option<Violation>,
}

/// Per-execution scheduler state, behind one real mutex. Every visible
/// operation locks it briefly; the baton protocol means contention is
/// hand-off only.
struct Inner {
    threads: Vec<ThreadSt>,
    objects: Vec<ObjSt>,
    /// The thread currently holding the baton (last granted). Only its
    /// arrival triggers a scheduling decision; a freshly spawned thread
    /// arriving at its pre-declared first op just parks.
    flow: Tid,
    aborted: Option<EndKind>,
    violation: Option<Violation>,
    ops: usize,
    max_ops: usize,
    /// Index of the next decision point (position in `path` while
    /// replaying the DFS prefix).
    decision_idx: usize,
    /// DFS tree path, moved in from the explorer for the execution.
    path: Vec<Node>,
    /// Live sleep set: threads (with their pending op at insertion) that
    /// need not be scheduled until a dependent operation runs.
    sleep: Vec<(Tid, OpDesc)>,
    preemptions: u32,
    strategy: Strategy,
    rng: Xoshiro256PlusPlus,
    /// Chosen thread per decision, for violation reports and the random
    /// strategy's distinct-schedule hash.
    trace: Vec<Tid>,
}

pub(crate) struct Rt {
    inner: Mutex<Inner>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Rt>, Tid)>> = const { RefCell::new(None) };
}

fn ctx() -> (Arc<Rt>, Tid) {
    CTX.with(|c| c.borrow().clone()).unwrap_or_else(|| {
        // Using a shadow primitive outside `Explorer::explore` is a
        // misuse of the checker API, not a model property; fail loudly.
        // pilfill: allow(unwrap)
        panic!("pilfill-check sync primitive used outside Explorer::explore")
    })
}

fn set_ctx(v: Option<(Arc<Rt>, Tid)>) {
    CTX.with(|c| *c.borrow_mut() = v);
}

/// `true` while the current OS thread is unwinding: shadow operations
/// become no-ops so destructors (mutex guards, pool drops) can run during
/// execution teardown without re-entering the dead scheduler.
fn tearing_down() -> bool {
    std::thread::panicking()
}

fn lock_inner(rt: &Rt) -> MutexGuard<'_, Inner> {
    rt.inner
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Rt {
    /// Registers a new synchronization object, returning its id.
    fn register_obj(&self, st: ObjSt) -> usize {
        let mut g = lock_inner(self);
        g.objects.push(st);
        g.objects.len() - 1
    }

    /// Current thread's clock snapshot (used when creating `RaceCell`s so
    /// the creating write is ordered before reads reached via spawn).
    fn my_clock(&self, me: Tid) -> Clock {
        lock_inner(self).threads[me].clock
    }

    /// Declares and executes one visible operation for thread `me`,
    /// parking until the scheduler grants it.
    fn visible(self: &Arc<Self>, me: Tid, desc: OpDesc, arg: OpArg) -> OpOut {
        let mut g = lock_inner(self);
        if g.aborted.is_some() {
            drop(g);
            resume_unwind(Box::new(AbortToken));
        }
        g.threads[me].next_op = Some(desc);
        // Only the baton holder's arrival is a decision point; anyone
        // else (a spawned thread reaching its pre-declared first op) is
        // already a candidate and just parks.
        if !g.threads[me].granted && g.flow == me {
            self.schedule(&mut g, me);
        }
        g = self.wait_granted(g, me);
        g.threads[me].granted = false;
        g.threads[me].next_op = None;
        let out = self.execute(&mut g, me, desc, arg);
        if g.aborted.is_some() {
            drop(g);
            resume_unwind(Box::new(AbortToken));
        }
        out
    }

    /// Parks until `me` is granted, honoring aborts.
    fn wait_granted<'a>(&'a self, mut g: MutexGuard<'a, Inner>, me: Tid) -> MutexGuard<'a, Inner> {
        loop {
            if g.aborted.is_some() {
                drop(g);
                resume_unwind(Box::new(AbortToken));
            }
            if g.threads[me].granted {
                return g;
            }
            g = self
                .cv
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// `true` when thread `t`'s declared operation can execute now.
    fn is_enabled(g: &Inner, t: Tid) -> bool {
        let th = &g.threads[t];
        if th.run != Run::Active {
            return false;
        }
        let Some(op) = th.next_op else {
            return false;
        };
        match op.kind {
            OpKind::MutexLock => matches!(g.objects[op.obj], ObjSt::Mutex { held_by: None, .. }),
            OpKind::CvReacquire => {
                let Some(ticket) = th.cv_ticket else {
                    return false;
                };
                ticket.notified
                    && matches!(g.objects[ticket.mutex], ObjSt::Mutex { held_by: None, .. })
            }
            OpKind::Join => {
                let target = op.obj - THREAD_OBJ_BASE;
                g.threads[target].run == Run::Finished
            }
            _ => true,
        }
    }

    /// The scheduling decision: pick which declared operation executes
    /// next and grant its thread. Called exactly once per executed
    /// operation, by the baton holder at its next arrival (or exit).
    fn schedule(&self, g: &mut Inner, arriving: Tid) {
        if g.aborted.is_some() {
            return;
        }
        let enabled: Vec<(Tid, OpDesc)> = {
            let mut order: Vec<Tid> = Vec::with_capacity(g.threads.len());
            if Self::is_enabled(g, arriving) {
                order.push(arriving);
            }
            for t in 0..g.threads.len() {
                if t != arriving && Self::is_enabled(g, t) {
                    order.push(t);
                }
            }
            order
                .into_iter()
                .filter_map(|t| g.threads[t].next_op.map(|op| (t, op)))
                .collect()
        };
        if enabled.is_empty() {
            let arriving_active = g.threads[arriving].run == Run::Active;
            let others_active = g
                .threads
                .iter()
                .enumerate()
                .any(|(t, th)| t != arriving && th.run == Run::Active);
            if arriving_active || others_active {
                let blocked: Vec<String> = g
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, th)| th.run == Run::Active)
                    .map(|(t, th)| format!("thread {t} on {:?}", th.next_op.map(|o| o.kind)))
                    .collect();
                self.record_violation(g, format!("deadlock: [{}]", blocked.join(", ")));
            }
            return;
        }
        let arriving_enabled = enabled.first().is_some_and(|&(t, _)| t == arriving);

        let (chosen_tid, chosen_op) = match g.strategy {
            Strategy::Exhaustive => {
                let d = g.decision_idx;
                g.decision_idx += 1;
                if d < g.path.len() {
                    // Replaying the explored prefix: re-arm the node's
                    // sleep entries for descendants, then take its
                    // current branch.
                    let explored = g.path[d].explored.clone();
                    g.sleep.extend(explored);
                    let pick = {
                        let node = &g.path[d];
                        node.candidates[node.chosen]
                    };
                    if !enabled.contains(&pick) {
                        self.record_violation(
                            g,
                            "nondeterministic model: replayed schedule diverged \
                             (model behavior must depend only on scheduling)"
                                .to_string(),
                        );
                        return;
                    }
                    pick
                } else {
                    let awake: Vec<(Tid, OpDesc)> = enabled
                        .iter()
                        .copied()
                        .filter(|&(t, _)| !g.sleep.iter().any(|&(s, _)| s == t))
                        .collect();
                    if awake.is_empty() {
                        // Every enabled thread sleeps: this schedule only
                        // commutes independent operations of an already
                        // explored one — prune the execution.
                        g.aborted = Some(EndKind::Pruned);
                        self.cv.notify_all();
                        return;
                    }
                    let node = Node {
                        candidates: awake,
                        chosen: 0,
                        explored: Vec::new(),
                        arriving,
                        arriving_enabled,
                        preempts_at_entry: g.preemptions,
                    };
                    let pick = node.candidates[0];
                    g.path.push(node);
                    pick
                }
            }
            Strategy::Random { .. } => {
                let draw = g.rng.next_u64() % (enabled.len() as u64);
                let idx = usize::try_from(draw).unwrap_or(0);
                enabled[idx]
            }
        };

        // The chosen operation wakes sleeping threads whose pending
        // operations depend on it.
        g.sleep
            .retain(|(t, op)| *t != chosen_tid && !dependent(op, &chosen_op));
        if chosen_tid != arriving && arriving_enabled {
            g.preemptions += 1;
        }
        g.trace.push(chosen_tid);
        g.flow = chosen_tid;
        g.threads[chosen_tid].granted = true;
        self.cv.notify_all();
    }

    fn record_violation(&self, g: &mut Inner, message: String) {
        if g.violation.is_none() {
            g.violation = Some(Violation {
                message,
                trace: g.trace.clone(),
            });
        }
        g.aborted = Some(EndKind::Violated);
        self.cv.notify_all();
    }

    /// Executes the granted operation's state transition.
    fn execute(&self, g: &mut Inner, me: Tid, desc: OpDesc, arg: OpArg) -> OpOut {
        g.ops += 1;
        if g.ops > g.max_ops {
            self.record_violation(
                g,
                format!(
                    "operation budget exceeded ({} ops): livelock or model too large",
                    g.max_ops
                ),
            );
            return OpOut::Unit;
        }
        g.threads[me].clock.bump(me);
        let me_clock = g.threads[me].clock;
        match desc.kind {
            OpKind::Start | OpKind::Spawn => OpOut::Unit,
            OpKind::Finish => {
                g.threads[me].run = Run::Finished;
                OpOut::Unit
            }
            OpKind::Join => {
                let target = desc.obj - THREAD_OBJ_BASE;
                let tc = g.threads[target].clock;
                g.threads[me].clock.join(&tc);
                OpOut::Unit
            }
            OpKind::AtomicLoad { acquire } => {
                let ObjSt::Atomic { value, sync } = &g.objects[desc.obj] else {
                    return OpOut::Unit;
                };
                let (value, sync) = (*value, *sync);
                if acquire {
                    g.threads[me].clock.join(&sync);
                }
                OpOut::Val(value)
            }
            OpKind::AtomicStore { release } => {
                let v = match arg {
                    OpArg::Store(v) => v,
                    _ => 0,
                };
                if let ObjSt::Atomic { value, sync } = &mut g.objects[desc.obj] {
                    *value = v;
                    // A release store publishes this thread's history; a
                    // relaxed store heads an empty release sequence, so
                    // acquire loads of the new value synchronize with
                    // nothing.
                    *sync = if release { me_clock } else { Clock::EMPTY };
                }
                OpOut::Unit
            }
            OpKind::AtomicRmw { acquire, release } => {
                let ObjSt::Atomic { value, sync } = &mut g.objects[desc.obj] else {
                    return OpOut::Unit;
                };
                let old = *value;
                let result = match arg {
                    OpArg::Add(v) => {
                        *value = old.wrapping_add(v);
                        OpOut::Val(old)
                    }
                    OpArg::Sub(v) => {
                        *value = old.wrapping_sub(v);
                        OpOut::Val(old)
                    }
                    OpArg::Swap(v) => {
                        *value = v;
                        OpOut::Val(old)
                    }
                    OpArg::Cx { expect, new } => {
                        if old == expect {
                            *value = new;
                            OpOut::Cx(Ok(old))
                        } else {
                            OpOut::Cx(Err(old))
                        }
                    }
                    _ => OpOut::Val(old),
                };
                let failed_cx = matches!(result, OpOut::Cx(Err(_)));
                if release && !failed_cx {
                    // An RMW continues the release sequence: join rather
                    // than replace, so earlier release stores stay
                    // visible through later acquire loads.
                    sync.join(&me_clock);
                }
                let sync = *sync;
                if acquire && !failed_cx {
                    g.threads[me].clock.join(&sync);
                }
                result
            }
            OpKind::MutexLock => {
                let ObjSt::Mutex { held_by, clock } = &mut g.objects[desc.obj] else {
                    return OpOut::Unit;
                };
                debug_assert!(held_by.is_none());
                *held_by = Some(me);
                let mc = *clock;
                g.threads[me].clock.join(&mc);
                OpOut::Unit
            }
            OpKind::MutexUnlock => {
                if let ObjSt::Mutex { held_by, clock } = &mut g.objects[desc.obj] {
                    *held_by = None;
                    clock.join(&me_clock);
                }
                OpOut::Unit
            }
            OpKind::CvWait => {
                let mutex = match arg {
                    OpArg::Store(m) => usize::try_from(m).unwrap_or(0),
                    _ => 0,
                };
                if let ObjSt::Mutex { held_by, clock } = &mut g.objects[mutex] {
                    *held_by = None;
                    clock.join(&me_clock);
                }
                g.threads[me].cv_ticket = Some(CvTicket {
                    cv: desc.obj,
                    mutex,
                    notified: false,
                });
                OpOut::Unit
            }
            OpKind::CvReacquire => {
                let Some(ticket) = g.threads[me].cv_ticket.take() else {
                    return OpOut::Unit;
                };
                if let ObjSt::Mutex { held_by, clock } = &mut g.objects[ticket.mutex] {
                    debug_assert!(held_by.is_none());
                    *held_by = Some(me);
                    let mc = *clock;
                    g.threads[me].clock.join(&mc);
                }
                OpOut::Unit
            }
            OpKind::CvNotifyAll => {
                for th in &mut g.threads {
                    if let Some(t) = th.cv_ticket.as_mut() {
                        if t.cv == desc.obj {
                            t.notified = true;
                        }
                    }
                }
                OpOut::Unit
            }
            OpKind::CvNotifyOne => {
                for th in &mut g.threads {
                    if let Some(t) = th.cv_ticket.as_mut() {
                        if t.cv == desc.obj && !t.notified {
                            t.notified = true;
                            break;
                        }
                    }
                }
                OpOut::Unit
            }
            OpKind::CellRead => {
                let writer = match &g.objects[desc.obj] {
                    ObjSt::Cell { writer, .. } => *writer,
                    _ => return OpOut::Unit,
                };
                if !writer.le(&me_clock) {
                    let msg = format!(
                        "data race: thread {me} read plain data whose last write \
                         does not happen-before the read (missing release/acquire edge)"
                    );
                    self.record_violation(g, msg);
                    return OpOut::Unit;
                }
                if let ObjSt::Cell { readers, .. } = &mut g.objects[desc.obj] {
                    readers.join(&me_clock);
                }
                OpOut::Unit
            }
            OpKind::CellWrite => {
                let (writer, readers) = match &g.objects[desc.obj] {
                    ObjSt::Cell { writer, readers } => (*writer, *readers),
                    _ => return OpOut::Unit,
                };
                if !writer.le(&me_clock) || !readers.le(&me_clock) {
                    let msg = format!(
                        "data race: thread {me} wrote plain data concurrently with \
                         an unordered access (write/write or read/write race)"
                    );
                    self.record_violation(g, msg);
                    return OpOut::Unit;
                }
                if let ObjSt::Cell { writer, readers } = &mut g.objects[desc.obj] {
                    *writer = me_clock;
                    *readers = Clock::EMPTY;
                }
                OpOut::Unit
            }
        }
    }
}

/// Lane pool: OS threads reused across executions so exploring tens of
/// thousands of interleavings does not pay tens of thousands of spawns.
struct LaneShared {
    q: Mutex<LaneQ>,
    cv: Condvar,
    done_cv: Condvar,
}

struct LaneQ {
    tasks: VecDeque<Box<dyn FnOnce() + Send>>,
    idle: usize,
    busy: usize,
    shutdown: bool,
    handles: Vec<std::thread::JoinHandle<()>>,
}

fn lock_q(shared: &LaneShared) -> MutexGuard<'_, LaneQ> {
    shared
        .q
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lane_loop(shared: &LaneShared) {
    let mut q = lock_q(shared);
    q.idle += 1;
    loop {
        if q.shutdown {
            q.idle -= 1;
            return;
        }
        if let Some(task) = q.tasks.pop_front() {
            q.idle -= 1;
            q.busy += 1;
            drop(q);
            task();
            q = lock_q(shared);
            q.busy -= 1;
            q.idle += 1;
            shared.done_cv.notify_all();
        } else {
            q = shared
                .cv
                .wait(q)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

fn dispatch(shared: &Arc<LaneShared>, task: Box<dyn FnOnce() + Send>) {
    let mut q = lock_q(shared);
    q.tasks.push_back(task);
    if q.idle == 0 {
        let s = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("pilfill-check-lane".to_string())
            .spawn(move || lane_loop(&s));
        if let Ok(h) = spawned {
            q.handles.push(h);
        }
    }
    shared.cv.notify_one();
}

fn wait_idle(shared: &LaneShared) {
    let mut q = lock_q(shared);
    while !(q.tasks.is_empty() && q.busy == 0) {
        q = shared
            .done_cv
            .wait(q)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

/// Explores the interleavings of a model closure.
///
/// Create one per model; the explorer owns a lane pool and the DFS state,
/// both reused across the many executions of [`Explorer::explore`].
pub struct Explorer {
    config: Config,
    lanes: Arc<LaneShared>,
    path: Vec<Node>,
    rng: Xoshiro256PlusPlus,
    distinct: HashSet<u64>,
}

impl Explorer {
    /// Creates an explorer with the given limits.
    pub fn new(config: Config) -> Self {
        let seed = match config.strategy {
            Strategy::Random { seed } => seed,
            Strategy::Exhaustive => 0,
        };
        Self {
            config,
            lanes: Arc::new(LaneShared {
                q: Mutex::new(LaneQ {
                    tasks: VecDeque::new(),
                    idle: 0,
                    busy: 0,
                    shutdown: false,
                    handles: Vec::new(),
                }),
                cv: Condvar::new(),
                done_cv: Condvar::new(),
            }),
            path: Vec::new(),
            rng: Xoshiro256PlusPlus::from_seed_u64(seed),
            distinct: HashSet::new(),
        }
    }

    /// Runs `model` under every schedule the strategy selects, stopping
    /// at the first violation or when the budget is spent.
    ///
    /// The closure is re-run once per interleaving and must be
    /// deterministic apart from scheduling: same inputs, no wall-clock,
    /// no ambient randomness.
    pub fn explore<F: Fn()>(&mut self, model: F) -> Outcome {
        let mut stats = Stats::default();
        loop {
            let (end, violation, trace, ops) = self.execute_once(&model);
            stats.ops += ops;
            match end {
                Some(EndKind::Pruned) => stats.pruned += 1,
                _ => {
                    stats.interleavings += 1;
                    match self.config.strategy {
                        Strategy::Exhaustive => stats.distinct += 1,
                        Strategy::Random { .. } => {
                            if self.distinct.insert(schedule_hash(&trace)) {
                                stats.distinct += 1;
                            }
                        }
                    }
                }
            }
            if let Some(v) = violation {
                return Outcome {
                    stats,
                    violation: Some(v),
                };
            }
            match self.config.strategy {
                Strategy::Exhaustive => {
                    if !advance(&mut self.path, self.config.preemption_bound) {
                        stats.complete = true;
                        break;
                    }
                    if stats.interleavings + stats.pruned >= self.config.budget as u64 {
                        break;
                    }
                }
                Strategy::Random { .. } => {
                    if stats.interleavings >= self.config.budget as u64 {
                        break;
                    }
                }
            }
        }
        Outcome {
            stats,
            violation: None,
        }
    }

    /// Runs the model once under the current schedule prefix. Returns the
    /// end kind (None = clean completion), any violation, the decision
    /// trace, and the op count.
    fn execute_once<F: Fn()>(
        &mut self,
        model: &F,
    ) -> (Option<EndKind>, Option<Violation>, Vec<Tid>, u64) {
        let rt = Arc::new(Rt {
            inner: Mutex::new(Inner {
                threads: vec![ThreadSt::new({
                    let mut c = Clock::EMPTY;
                    c.bump(0);
                    c
                })],
                objects: Vec::new(),
                flow: 0,
                aborted: None,
                violation: None,
                ops: 0,
                max_ops: self.config.max_ops,
                decision_idx: 0,
                path: std::mem::take(&mut self.path),
                sleep: Vec::new(),
                preemptions: 0,
                strategy: self.config.strategy,
                rng: self.rng.clone(),
                trace: Vec::new(),
            }),
            cv: Condvar::new(),
        });
        LANES.with(|l| *l.borrow_mut() = Some(Arc::clone(&self.lanes)));
        set_ctx(Some((Arc::clone(&rt), 0)));
        let result = catch_unwind(AssertUnwindSafe(model));
        set_ctx(None);
        LANES.with(|l| *l.borrow_mut() = None);

        {
            let mut g = lock_inner(&rt);
            match result {
                Err(p) if p.is::<AbortToken>() => {}
                Err(p) => {
                    let msg = panic_message(p.as_ref());
                    rt.record_violation(&mut g, format!("main thread panicked: {msg}"));
                }
                Ok(()) => {
                    if g.aborted.is_none() {
                        let leaked = g
                            .threads
                            .iter()
                            .skip(1)
                            .filter(|t| t.run == Run::Active)
                            .count();
                        if leaked > 0 {
                            rt.record_violation(
                                &mut g,
                                format!(
                                    "main thread returned with {leaked} live model \
                                     thread(s): every spawned thread must be joined"
                                ),
                            );
                        }
                    }
                }
            }
        }
        // Let every lane finish unwinding before reclaiming shared state.
        wait_idle(&self.lanes);

        let mut g = lock_inner(&rt);
        self.path = std::mem::take(&mut g.path);
        self.rng = g.rng.clone();
        let trace = std::mem::take(&mut g.trace);
        (
            g.aborted,
            g.violation.take(),
            trace,
            u64::try_from(g.ops).unwrap_or(u64::MAX),
        )
    }
}

impl Drop for Explorer {
    fn drop(&mut self) {
        let handles = {
            let mut q = lock_q(&self.lanes);
            q.shutdown = true;
            self.lanes.cv.notify_all();
            std::mem::take(&mut q.handles)
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Advances the DFS path to the next unexplored admissible branch,
/// applying the sleep-set and preemption-bound filters. Returns `false`
/// when the bounded space is exhausted.
fn advance(path: &mut Vec<Node>, bound: Option<u32>) -> bool {
    while let Some(node) = path.last_mut() {
        let done = node.candidates[node.chosen];
        node.explored.push(done);
        let mut next = node.chosen + 1;
        while next < node.candidates.len() {
            let (t, _) = node.candidates[next];
            let slept = node.explored.iter().any(|&(s, _)| s == t);
            // Branching away from an enabled arriving thread is a
            // preemption; skip branches that would blow the bound.
            let preempts = t != node.arriving && node.arriving_enabled;
            let over = preempts && bound.is_some_and(|b| node.preempts_at_entry >= b);
            if !slept && !over {
                break;
            }
            next += 1;
        }
        if next < node.candidates.len() {
            node.chosen = next;
            return true;
        }
        path.pop();
    }
    false
}

/// FNV-1a over a decision trace; counts distinct random schedules.
fn schedule_hash(trace: &[Tid]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &t in trace {
        h ^= t as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn panic_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

thread_local! {
    /// Lane pool of the explorer driving the current execution; spawn
    /// operations dispatch model threads through it.
    static LANES: RefCell<Option<Arc<LaneShared>>> = const { RefCell::new(None) };
}

/// Spawns a model thread running `f`; pairs with [`join_thread`].
pub(crate) fn spawn_thread(f: Box<dyn FnOnce() + Send>) -> Tid {
    if tearing_down() {
        return 0;
    }
    let (rt, me) = ctx();
    let _ = rt.visible(me, OpDesc::new(GLOBAL_OBJ, OpKind::Spawn), OpArg::None);
    let vid = {
        let mut g = lock_inner(&rt);
        if g.threads.len() >= MAX_THREADS {
            rt.record_violation(
                &mut g,
                format!("model spawned more than {MAX_THREADS} threads"),
            );
            drop(g);
            resume_unwind(Box::new(AbortToken));
        }
        let vid = g.threads.len();
        let parent_clock = g.threads[me].clock;
        let mut st = ThreadSt::new(parent_clock);
        st.clock.bump(vid);
        // Declare the child's first operation on its behalf so the
        // scheduler can pick it before its OS lane even starts; the lane
        // pool's own handoff is invisible to the model.
        st.next_op = Some(OpDesc::new(thread_obj(vid), OpKind::Start));
        g.threads.push(st);
        vid
    };
    let lanes = LANES.with(|l| l.borrow().clone());
    let Some(lanes) = lanes else {
        return vid;
    };
    let task_rt = Arc::clone(&rt);
    dispatch(
        &lanes,
        Box::new(move || {
            set_ctx(Some((Arc::clone(&task_rt), vid)));
            let result = catch_unwind(AssertUnwindSafe(|| {
                // Consume the pre-declared Start barrier, then run.
                let _ = task_rt.visible(
                    vid,
                    OpDesc::new(thread_obj(vid), OpKind::Start),
                    OpArg::None,
                );
                f();
            }));
            let payload = match result {
                Ok(()) => None,
                Err(p) if p.is::<AbortToken>() => {
                    set_ctx(None);
                    return;
                }
                Err(p) => Some(p),
            };
            // The finish op itself abort-unwinds when the execution is
            // being torn down; swallow the token here at the lane edge.
            let _ = catch_unwind(AssertUnwindSafe(|| {
                finish_current(&task_rt, vid, payload);
            }));
            set_ctx(None);
        }),
    );
    vid
}

fn finish_current(rt: &Arc<Rt>, me: Tid, payload: Option<Box<dyn Any + Send>>) {
    if let Some(p) = payload {
        lock_inner(rt).threads[me].payload = Some(p);
    }
    let _ = rt.visible(me, OpDesc::new(thread_obj(me), OpKind::Finish), OpArg::None);
    // Hand the baton off: this thread never arrives again.
    let mut g = lock_inner(rt);
    rt.schedule(&mut g, me);
}

/// Joins model thread `vid`, returning its panic payload if it panicked.
pub(crate) fn join_thread(vid: Tid) -> Option<Box<dyn Any + Send>> {
    if tearing_down() {
        return None;
    }
    let (rt, me) = ctx();
    let _ = rt.visible(me, OpDesc::new(thread_obj(vid), OpKind::Join), OpArg::None);
    let payload = lock_inner(&rt).threads[vid].payload.take();
    payload
}

/// Performs a visible operation for the calling model thread.
pub(crate) fn op(desc: OpDesc, arg: OpArg) -> OpOut {
    if tearing_down() {
        return OpOut::Unit;
    }
    let (rt, me) = ctx();
    rt.visible(me, desc, arg)
}

/// What kind of synchronization object to register.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ObjKind {
    Atomic,
    Mutex,
    Condvar,
    Cell,
}

/// Registers a synchronization object for the current execution.
pub(crate) fn register(kind: ObjKind, initial: u64) -> usize {
    let (rt, me) = ctx();
    match kind {
        ObjKind::Atomic => rt.register_obj(ObjSt::Atomic {
            value: initial,
            sync: Clock::EMPTY,
        }),
        ObjKind::Mutex => rt.register_obj(ObjSt::Mutex {
            held_by: None,
            clock: Clock::EMPTY,
        }),
        ObjKind::Condvar => rt.register_obj(ObjSt::Condvar),
        ObjKind::Cell => {
            let clock = rt.my_clock(me);
            rt.register_obj(ObjSt::Cell {
                writer: clock,
                readers: Clock::EMPTY,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{AtomicUsize, Mutex as ModelMutex, RaceCell};
    use crate::thread;
    use std::sync::atomic::Ordering;

    #[test]
    fn single_thread_model_runs_once_exhaustively() {
        let mut ex = Explorer::new(Config::default());
        let outcome = ex.explore(|| {
            let a = AtomicUsize::new(1);
            assert_eq!(a.load(Ordering::Relaxed), 1);
            a.store(2, Ordering::Release);
            assert_eq!(a.load(Ordering::Acquire), 2);
        });
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert_eq!(outcome.stats.interleavings, 1);
        assert!(outcome.stats.complete);
    }

    #[test]
    fn two_thread_counter_explores_multiple_interleavings() {
        let mut ex = Explorer::new(Config::default());
        let outcome = ex.explore(|| {
            let a = std::sync::Arc::new(AtomicUsize::new(0));
            let a2 = std::sync::Arc::clone(&a);
            let h = thread::spawn(move || {
                a2.fetch_add(1, Ordering::Relaxed);
            });
            a.fetch_add(1, Ordering::Relaxed);
            h.join().map_err(|_| ()).expect("joins");
            assert_eq!(a.load(Ordering::Relaxed), 2);
        });
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.stats.interleavings >= 2, "{:?}", outcome.stats);
        assert!(outcome.stats.complete);
    }

    #[test]
    fn release_acquire_publication_is_race_free() {
        let mut ex = Explorer::new(Config::default());
        let outcome = ex.explore(|| {
            let data = std::sync::Arc::new(RaceCell::new(0u64));
            let flag = std::sync::Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (std::sync::Arc::clone(&data), std::sync::Arc::clone(&flag));
            let h = thread::spawn(move || {
                if f2.load(Ordering::Acquire) == 1 {
                    assert_eq!(d2.get(), 7);
                }
            });
            data.set(7);
            flag.store(1, Ordering::Release);
            h.join().map_err(|_| ()).expect("joins");
        });
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
        assert!(outcome.stats.complete);
    }

    #[test]
    fn relaxed_publication_race_is_caught() {
        let mut ex = Explorer::new(Config::default());
        let outcome = ex.explore(|| {
            let data = std::sync::Arc::new(RaceCell::new(0u64));
            let flag = std::sync::Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (std::sync::Arc::clone(&data), std::sync::Arc::clone(&flag));
            let h = thread::spawn(move || {
                if f2.load(Ordering::Acquire) == 1 {
                    let _ = d2.get();
                }
            });
            data.set(7);
            flag.store(1, Ordering::Relaxed); // the bug under test
            h.join().map_err(|_| ()).expect("joins");
        });
        let v = outcome.violation.expect("relaxed publication must race");
        assert!(v.message.contains("data race"), "{v}");
    }

    #[test]
    fn deadlock_is_detected() {
        let mut ex = Explorer::new(Config::default());
        let outcome = ex.explore(|| {
            let m = std::sync::Arc::new(ModelMutex::new(0u64));
            let m2 = std::sync::Arc::clone(&m);
            let h = thread::spawn(move || {
                let _g1 = m2.lock().map_err(|_| ()).expect("locks");
                let _g2 = m2.lock().map_err(|_| ()).expect("self-deadlock");
            });
            h.join().map_err(|_| ()).expect("joins");
        });
        let v = outcome.violation.expect("double lock must deadlock");
        assert!(v.message.contains("deadlock"), "{v}");
    }

    #[test]
    fn random_strategy_is_reproducible_from_seed() {
        let run = |seed: u64| {
            let mut ex = Explorer::new(Config {
                strategy: Strategy::Random { seed },
                budget: 200,
                ..Config::default()
            });
            ex.explore(|| {
                let a = std::sync::Arc::new(AtomicUsize::new(0));
                let a2 = std::sync::Arc::clone(&a);
                let h = thread::spawn(move || {
                    a2.fetch_add(3, Ordering::Relaxed);
                });
                a.fetch_add(5, Ordering::Relaxed);
                h.join().map_err(|_| ()).expect("joins");
            })
            .stats
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a.interleavings, b.interleavings);
        assert_eq!(a.distinct, b.distinct);
        assert_eq!(a.ops, b.ops);
        assert!(c.interleavings > 0);
    }

    #[test]
    fn leaked_thread_is_a_violation() {
        let mut ex = Explorer::new(Config {
            budget: 10,
            ..Config::default()
        });
        let outcome = ex.explore(|| {
            let _h = thread::spawn(|| {});
        });
        let v = outcome.violation.expect("unjoined thread is reported");
        assert!(v.message.contains("live model thread"), "{v}");
    }
}
