//! `check-report.json` emission.
//!
//! Serializes a model-suite run into the same hand-rolled JSON dialect
//! the audit tool uses for `lint-report.json` (via
//! [`pilfill_diag::JsonWriter`]), so CI can drop both reports next
//! to each other and diff them across runs.

use crate::models::ModelReport;
use pilfill_diag::JsonWriter;

/// Renders the suite results as a `check-report.json` document.
///
/// Layout:
///
/// ```json
/// {
///   "seed": 123,
///   "total_distinct": 12345,
///   "ok": true,
///   "models": [
///     { "name": "...", "invariant": "...", "ok": true,
///       "exhaustive": { "interleavings": n, "distinct": n, "pruned": n,
///                        "ops": n, "complete": true },
///       "random": { ... , "seed": n },
///       "violation": "..."? }
///   ]
/// }
/// ```
pub fn render_report(seed: u64, reports: &[ModelReport]) -> String {
    let total: u64 = reports.iter().map(ModelReport::distinct).sum();
    let ok = reports.iter().all(|r| r.violation.is_none());
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_u64("seed", seed);
    w.field_u64("total_distinct", total);
    w.field_bool("ok", ok);
    w.key("models");
    w.begin_array();
    for r in reports {
        w.begin_object();
        w.field_str("name", r.name);
        w.field_str("invariant", r.invariant);
        w.field_bool("ok", r.violation.is_none());
        w.key("exhaustive");
        w.begin_object();
        w.field_u64("interleavings", r.exhaustive.interleavings);
        w.field_u64("distinct", r.exhaustive.distinct);
        w.field_u64("pruned", r.exhaustive.pruned);
        w.field_u64("ops", r.exhaustive.ops);
        w.field_bool("complete", r.exhaustive.complete);
        w.end_object();
        w.key("random");
        w.begin_object();
        w.field_u64("interleavings", r.random.interleavings);
        w.field_u64("distinct", r.random.distinct);
        w.field_u64("ops", r.random.ops);
        w.field_u64("seed", r.seed);
        w.end_object();
        if let Some(v) = &r.violation {
            w.field_str("violation", &v.to_string());
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt::Stats;

    fn sample() -> Vec<ModelReport> {
        vec![ModelReport {
            name: "sample",
            invariant: "nothing bad happens",
            exhaustive: Stats {
                interleavings: 4,
                distinct: 4,
                pruned: 1,
                ops: 40,
                complete: true,
            },
            random: Stats {
                interleavings: 3,
                distinct: 2,
                pruned: 0,
                ops: 30,
                complete: false,
            },
            seed: 9,
            violation: None,
        }]
    }

    #[test]
    fn report_carries_totals_and_per_model_stats() {
        let json = render_report(7, &sample());
        assert!(json.contains("\"seed\":7"));
        assert!(json.contains("\"total_distinct\":6"));
        assert!(json.contains("\"ok\":true"));
        assert!(json.contains("\"name\":\"sample\""));
        assert!(json.contains("\"complete\":true"));
    }

    #[test]
    fn violations_flip_ok_and_are_included() {
        let mut reports = sample();
        reports[0].violation = Some(crate::rt::Violation {
            message: "data race on cell".into(),
            trace: vec![0, 1, 0],
        });
        let json = render_report(7, &reports);
        assert!(json.contains("\"ok\":false"));
        assert!(json.contains("data race on cell"));
    }
}
