//! Vector clocks for happens-before tracking.
//!
//! Every modeled thread carries a [`Clock`]; every synchronization object
//! (atomic, mutex) carries the clock its release history publishes. An
//! event `a` happens-before `b` exactly when `a`'s clock is component-wise
//! `<=` `b`'s clock, which is what the race detector in the runtime tests.
//! The clock is a fixed array because model executions are bounded to
//! [`MAX_THREADS`] threads — exploration cost is exponential in thread
//! count, so models never get close to the cap.

/// Upper bound on threads in one model execution (including the main
/// thread). Spawning past it is reported as a model error, not a panic.
pub const MAX_THREADS: usize = 8;

/// A fixed-width vector clock over model thread ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Clock([u32; MAX_THREADS]);

impl Clock {
    /// The all-zero clock: happens-before everything.
    pub const EMPTY: Clock = Clock([0; MAX_THREADS]);

    /// Advances this thread's own component by one event.
    pub fn bump(&mut self, tid: usize) {
        debug_assert!(tid < MAX_THREADS);
        self.0[tid] += 1;
    }

    /// Joins `other` into `self` (component-wise max): after an acquire
    /// edge, the acquiring thread has seen everything `other` had seen.
    pub fn join(&mut self, other: &Clock) {
        for (s, o) in self.0.iter_mut().zip(other.0.iter()) {
            *s = (*s).max(*o);
        }
    }

    /// `true` when every component of `self` is `<=` the matching
    /// component of `other`, i.e. `self` happens-before-or-equals `other`.
    pub fn le(&self, other: &Clock) -> bool {
        self.0.iter().zip(other.0.iter()).all(|(s, o)| s <= o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_componentwise_max() {
        let mut a = Clock::EMPTY;
        a.bump(0);
        a.bump(0);
        let mut b = Clock::EMPTY;
        b.bump(1);
        a.join(&b);
        assert!(b.le(&a));
        assert!(!a.le(&b));
    }

    #[test]
    fn empty_happens_before_everything() {
        let mut a = Clock::EMPTY;
        a.bump(3);
        assert!(Clock::EMPTY.le(&a));
        assert!(Clock::EMPTY.le(&Clock::EMPTY));
    }

    #[test]
    fn concurrent_clocks_are_unordered() {
        let mut a = Clock::EMPTY;
        a.bump(0);
        let mut b = Clock::EMPTY;
        b.bump(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
    }
}
