//! Models of the `pilfill-exec` worker-pool protocols.
//!
//! Each model is a faithful transcription of one protocol from
//! `crates/exec/src/lib.rs` onto the shadow primitives — same lock
//! structure, same atomics with the same orderings, same condvar
//! discipline — with the protocol's informal invariant turned into
//! assertions and race-checked [`RaceCell`] data:
//!
//! | model            | protocol under check                                |
//! |------------------|-----------------------------------------------------|
//! | `epoch-publish`  | epoch publication happens-before job visibility,    |
//! |                  | across pool reuse (two consecutive jobs)            |
//! | `cursor-claim`   | atomic-cursor batch claiming never double-claims or |
//! |                  | loses an index                                      |
//! | `slot-merge`     | disjoint-slot writes never alias; the submitter is  |
//! |                  | a claiming lane too                                 |
//! | `gate-stream`    | watermark publication happens-before item reads     |
//! |                  | (the `ReadyGate` fast path)                         |
//! | `gate-abort`     | a producer abort wakes parked consumer lanes        |
//! | `panic-prop`     | panic propagation never deadlocks close and never   |
//! |                  | loses the payload                                   |
//!
//! The `gate-stream` model takes the publish ordering as a parameter so
//! the test suite can run the *mutated* protocol (the `Release` store
//! weakened to `Relaxed`) and demonstrate the checker catches it.

use crate::rt::{Config, Explorer, Stats, Strategy, Violation};
use crate::sync::{AtomicBool, AtomicUsize, Condvar, Mutex, MutexGuard, RaceCell};
use crate::thread::{self, JoinHandle};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Locks a shadow mutex (the shadow lock never poisons).
fn m_lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Waits on a shadow condvar.
fn m_wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Joins a model thread, re-raising its panic so the explorer records it
/// as a violation of the current execution.
fn join_ok<T>(h: JoinHandle<T>) -> T {
    match h.join() {
        Ok(v) => v,
        Err(p) => std::panic::resume_unwind(p),
    }
}

// ---------------------------------------------------------------------------
// epoch-publish
// ---------------------------------------------------------------------------

/// Mirrors `worker_loop` + `try_open_job`/`close_job`: the submitter
/// writes the job payload as *plain data*, publishes it under the state
/// lock with a bumped epoch, and the worker joins at most once per epoch.
/// The `RaceCell` payload proves the happens-before claim: if publication
/// did not order the payload write before the worker's read — or if
/// `close_job` did not wait for `active == 0` before the *next* job's
/// payload write — the race detector fires.
pub fn model_epoch_publish() {
    struct St {
        epoch: u64,
        job: bool,
        active: usize,
        joins: u64,
        shutdown: bool,
    }
    struct Sh {
        state: Mutex<St>,
        work_cv: Condvar,
        done_cv: Condvar,
        payload: RaceCell<u64>,
    }

    const JOBS: u64 = 2;
    let sh = Arc::new(Sh {
        state: Mutex::new(St {
            epoch: 0,
            job: false,
            active: 0,
            joins: 0,
            shutdown: false,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
        payload: RaceCell::new(0),
    });

    let worker = {
        let sh = Arc::clone(&sh);
        thread::spawn(move || {
            let mut seen = 0u64;
            let mut st = m_lock(&sh.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.job && st.epoch != seen {
                    seen = st.epoch;
                    st.active += 1;
                    st.joins += 1;
                    drop(st);
                    // The protocol promises this read sees the payload the
                    // submitter wrote *before* publishing this epoch.
                    let got = sh.payload.get();
                    assert_eq!(got, seen * 10, "stale payload for epoch {seen}");
                    st = m_lock(&sh.state);
                    st.active -= 1;
                    if st.active == 0 {
                        sh.done_cv.notify_all();
                    }
                } else {
                    st = m_wait(&sh.work_cv, st);
                }
            }
        })
    };

    for epoch in 1..=JOBS {
        // Plain write, then publish under the lock — the exec ordering.
        sh.payload.set(epoch * 10);
        {
            let mut st = m_lock(&sh.state);
            st.epoch = epoch;
            st.job = true;
            sh.work_cv.notify_all();
        }
        // close_job: no new joiner, wait out the ones inside.
        let mut st = m_lock(&sh.state);
        st.job = false;
        while st.active > 0 {
            st = m_wait(&sh.done_cv, st);
        }
        drop(st);
    }

    let joins = {
        let mut st = m_lock(&sh.state);
        st.shutdown = true;
        sh.work_cv.notify_all();
        st.joins
    };
    assert!(joins <= JOBS, "worker joined an epoch twice");
    join_ok(worker);
}

// ---------------------------------------------------------------------------
// cursor-claim
// ---------------------------------------------------------------------------

/// Mirrors `claim_loop`'s adaptive batching: two lanes race `fetch_add`
/// on a shared cursor (both `Relaxed`, as in exec) and bump a per-index
/// counter for every claimed index. A double-claim is two unordered
/// writes to one cell — a detected race; a lost index leaves its counter
/// at zero — a failed assert after both lanes are joined.
pub fn model_cursor_claim() {
    const N: usize = 5;
    const LANES: usize = 2;
    const RATIO: usize = 2;

    let cursor = Arc::new(AtomicUsize::new(0));
    let claims: Arc<Vec<RaceCell<u64>>> = Arc::new((0..N).map(|_| RaceCell::new(0)).collect());

    let lane = |cursor: Arc<AtomicUsize>, claims: Arc<Vec<RaceCell<u64>>>| {
        move || loop {
            let claimed = cursor.load(Ordering::Relaxed);
            if claimed >= N {
                return;
            }
            let remaining = N - claimed;
            let batch = (remaining / (LANES * RATIO)).clamp(1, 2);
            let begin = cursor.fetch_add(batch, Ordering::Relaxed);
            if begin >= N {
                return;
            }
            let end = (begin + batch).min(N);
            for i in begin..end {
                claims[i].set(claims[i].get() + 1);
            }
        }
    };

    let a = thread::spawn(lane(Arc::clone(&cursor), Arc::clone(&claims)));
    let b = thread::spawn(lane(Arc::clone(&cursor), Arc::clone(&claims)));
    join_ok(a);
    join_ok(b);
    for (i, c) in claims.iter().enumerate() {
        assert_eq!(c.get(), 1, "index {i} claimed a wrong number of times");
    }
}

// ---------------------------------------------------------------------------
// slot-merge
// ---------------------------------------------------------------------------

/// Mirrors `for_each_slot` through `run_erased`: the submitter is itself a
/// claiming lane next to one worker, and every claimed index writes its
/// own result slot exactly once. Aliased slots are unordered writes — a
/// detected race; the final in-order readback checks value integrity.
pub fn model_slot_merge() {
    const N: usize = 4;

    let cursor = Arc::new(AtomicUsize::new(0));
    let out: Arc<Vec<RaceCell<u64>>> = Arc::new((0..N).map(|_| RaceCell::new(0)).collect());

    let claim = |cursor: &AtomicUsize, out: &[RaceCell<u64>]| loop {
        let begin = cursor.fetch_add(1, Ordering::Relaxed);
        if begin >= N {
            return;
        }
        let v = begin as u64;
        out[begin].set(v * v + 1);
    };

    let worker = {
        let cursor = Arc::clone(&cursor);
        let out = Arc::clone(&out);
        thread::spawn(move || claim(&cursor, &out))
    };
    // The submitter participates, exactly like run_erased.
    claim(&cursor, &out);
    join_ok(worker);
    for (i, slot) in out.iter().enumerate() {
        let v = i as u64;
        assert_eq!(slot.get(), v * v + 1, "slot {i} holds a wrong result");
    }
}

// ---------------------------------------------------------------------------
// gate-stream / gate-abort
// ---------------------------------------------------------------------------

/// The `ReadyGate` of `stream_map`: watermark atomic, lock, condvar.
struct Gate {
    ready: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Self {
        Self {
            ready: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// `ReadyGate::publish`, with the store ordering as a parameter: the
    /// sound protocol uses `Release`; the mutation test runs `Relaxed`
    /// to prove the checker notices the missing edge on the lock-free
    /// fast path of [`Gate::wait_past`].
    fn publish(&self, upto: usize, release: bool) {
        let _guard = m_lock(&self.lock);
        let order = if release {
            Ordering::Release
        } else {
            Ordering::Relaxed
        };
        self.ready.store(upto, order);
        self.cv.notify_all();
    }

    /// `ReadyGate::wait_past`, verbatim: panicked check, lock-free fast
    /// path, then the locked re-check-and-wait slow path.
    fn wait_past(&self, i: usize, panicked: &AtomicBool) -> bool {
        loop {
            if panicked.load(Ordering::Relaxed) {
                return false;
            }
            if self.ready.load(Ordering::Acquire) > i {
                return true;
            }
            let guard = m_lock(&self.lock);
            if self.ready.load(Ordering::Acquire) > i {
                return true;
            }
            if panicked.load(Ordering::Relaxed) {
                return false;
            }
            drop(m_wait(&self.cv, guard));
        }
    }
}

/// Mirrors `stream_map`'s happy path: the producer writes item `k` as
/// plain data and publishes `ready = k + 1`; a consumer lane claims
/// indices behind the watermark and reads the items. With a `Release`
/// publish the fast-path `Acquire` load carries the happens-before edge;
/// the `release: false` variant is the seeded mutation the checker must
/// catch as a data race.
fn gate_stream_model(release: bool) {
    const N: usize = 3;

    let items: Arc<Vec<RaceCell<u64>>> = Arc::new((0..N).map(|_| RaceCell::new(0)).collect());
    let gate = Arc::new(Gate::new());
    let panicked = Arc::new(AtomicBool::new(false));
    let cursor = Arc::new(AtomicUsize::new(0));

    let consumer = {
        let items = Arc::clone(&items);
        let gate = Arc::clone(&gate);
        let panicked = Arc::clone(&panicked);
        let cursor = Arc::clone(&cursor);
        thread::spawn(move || loop {
            if panicked.load(Ordering::Relaxed) {
                return;
            }
            let claimed = cursor.load(Ordering::Relaxed);
            if claimed >= N {
                return;
            }
            let ready = gate.ready.load(Ordering::Acquire);
            if ready <= claimed {
                if !gate.wait_past(claimed, &panicked) {
                    return;
                }
                continue;
            }
            let begin = cursor.fetch_add(1, Ordering::Relaxed);
            if begin >= N {
                return;
            }
            if begin >= ready && !gate.wait_past(begin, &panicked) {
                return;
            }
            let got = items[begin].get();
            assert_eq!(got, begin as u64 * 3 + 1, "item {begin} read torn/stale");
        })
    };

    for k in 0..N {
        items[k].set(k as u64 * 3 + 1);
        gate.publish(k + 1, release);
    }
    join_ok(consumer);
}

/// The sound `gate-stream` protocol (release publication).
pub fn model_gate_stream() {
    gate_stream_model(true);
}

/// The seeded mutation: `ReadyGate::publish` weakened to a `Relaxed`
/// store. Exposed (test-only) so the mutation test can assert the
/// checker reports the resulting race on the lock-free fast path.
#[cfg(test)]
pub fn model_gate_stream_weak_publish() {
    gate_stream_model(false);
}

/// Mirrors `stream_map`'s producer-panic path: the producer sets the
/// `panicked` flag and publishes the full watermark to flush parked
/// lanes. The invariant is wakeup: a consumer parked in `wait_past` must
/// always terminate (a lost notification is a detected deadlock).
pub fn model_gate_abort() {
    const N: usize = 2;

    let items: Arc<Vec<RaceCell<u64>>> = Arc::new((0..N).map(|_| RaceCell::new(0)).collect());
    let gate = Arc::new(Gate::new());
    let panicked = Arc::new(AtomicBool::new(false));

    let consumer = {
        let items = Arc::clone(&items);
        let gate = Arc::clone(&gate);
        let panicked = Arc::clone(&panicked);
        thread::spawn(move || {
            if gate.wait_past(0, &panicked) {
                // The abort publish can legitimately push the watermark
                // past unwritten items; exec tolerates the read (the
                // slot is `None`) — what matters is it is race-free.
                let _ = items[0].get();
            }
        })
    };

    // Producer "panic": flag first, then flush the gate — exec's order.
    panicked.store(true, Ordering::Relaxed);
    gate.publish(N, true);
    join_ok(consumer);
}

// ---------------------------------------------------------------------------
// panic-prop
// ---------------------------------------------------------------------------

/// Mirrors `claim_loop`'s panic recording plus `close_job`: one lane
/// "panics" (flag + first-payload-wins mutex), another observes the flag,
/// both check out of the job, and the submitter waits on `done_cv` and
/// must find a payload. Deadlocked close or a lost payload both surface.
pub fn model_panic_prop() {
    struct St {
        active: usize,
    }
    struct Sh {
        state: Mutex<St>,
        done_cv: Condvar,
        panicked: AtomicBool,
        payload: Mutex<Option<u64>>,
    }

    let sh = Arc::new(Sh {
        // Both lanes start checked in, as if they joined the epoch.
        state: Mutex::new(St { active: 2 }),
        done_cv: Condvar::new(),
        panicked: AtomicBool::new(false),
        payload: Mutex::new(None),
    });

    let check_out = |sh: &Sh| {
        let mut st = m_lock(&sh.state);
        st.active -= 1;
        if st.active == 0 {
            sh.done_cv.notify_all();
        }
    };

    let panicker = {
        let sh = Arc::clone(&sh);
        thread::spawn(move || {
            // exec's order: flag first (stops other lanes), then payload.
            sh.panicked.store(true, Ordering::Relaxed);
            {
                let mut p = m_lock(&sh.payload);
                if p.is_none() {
                    *p = Some(13);
                }
            }
            check_out(&sh);
        })
    };
    let observer = {
        let sh = Arc::clone(&sh);
        thread::spawn(move || {
            // A cooperating lane may or may not see the flag before it
            // finishes; either way it records a payload only if first.
            if sh.panicked.load(Ordering::Relaxed) {
                let mut p = m_lock(&sh.payload);
                if p.is_none() {
                    *p = Some(99);
                }
            }
            check_out(&sh);
        })
    };

    // close_job: wait for the lanes to leave, then take the payload.
    let mut st = m_lock(&sh.state);
    while st.active > 0 {
        st = m_wait(&sh.done_cv, st);
    }
    drop(st);
    let payload = m_lock(&sh.payload).take();
    assert!(payload.is_some(), "panic payload was lost");
    join_ok(panicker);
    join_ok(observer);
}

// ---------------------------------------------------------------------------
// Suite driver
// ---------------------------------------------------------------------------

/// One entry in the model suite.
pub struct ModelSpec {
    /// Stable model name (used in reports and CLI filters).
    pub name: &'static str,
    /// The protocol invariant the model checks.
    pub invariant: &'static str,
    /// The model closure.
    pub run: fn(),
}

/// Every pool-protocol model, in a stable order.
pub fn all_models() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            name: "epoch-publish",
            invariant: "epoch publication happens-before job visibility, across pool reuse",
            run: model_epoch_publish,
        },
        ModelSpec {
            name: "cursor-claim",
            invariant: "atomic-cursor batch claiming never double-claims or loses an index",
            run: model_cursor_claim,
        },
        ModelSpec {
            name: "slot-merge",
            invariant: "disjoint-slot merges never alias, with the submitter as a lane",
            run: model_slot_merge,
        },
        ModelSpec {
            name: "gate-stream",
            invariant: "watermark publication happens-before item reads on the gate fast path",
            run: model_gate_stream,
        },
        ModelSpec {
            name: "gate-abort",
            invariant: "a producer abort always wakes parked consumer lanes",
            run: model_gate_abort,
        },
        ModelSpec {
            name: "panic-prop",
            invariant: "panic propagation never deadlocks close_job and never loses the payload",
            run: model_panic_prop,
        },
    ]
}

/// The checked result of one model: exhaustive pass + seeded random pass.
#[must_use]
pub struct ModelReport {
    /// Model name.
    pub name: &'static str,
    /// Invariant description.
    pub invariant: &'static str,
    /// Stats of the bounded exhaustive pass.
    pub exhaustive: Stats,
    /// Stats of the seeded random pass.
    pub random: Stats,
    /// Seed the random pass used (derived from the suite seed).
    pub seed: u64,
    /// First violation found by either pass.
    pub violation: Option<Violation>,
}

impl ModelReport {
    /// Distinct interleavings explored across both passes. The two
    /// strategies may overlap on schedules, so this is an upper bound on
    /// the union — but every counted schedule was genuinely executed and
    /// checked.
    pub fn distinct(&self) -> u64 {
        self.exhaustive.distinct + self.random.distinct
    }
}

/// Runs one model under both strategies with the given budgets.
pub fn check_model(
    spec: &ModelSpec,
    seed: u64,
    exhaustive_budget: usize,
    random_budget: usize,
) -> ModelReport {
    let mut ex = Explorer::new(Config {
        strategy: Strategy::Exhaustive,
        budget: exhaustive_budget,
        ..Config::default()
    });
    let exhaustive = ex.explore(spec.run);
    drop(ex);
    if exhaustive.violation.is_some() {
        return ModelReport {
            name: spec.name,
            invariant: spec.invariant,
            exhaustive: exhaustive.stats,
            random: Stats::default(),
            seed,
            violation: exhaustive.violation,
        };
    }
    let mut rx = Explorer::new(Config {
        strategy: Strategy::Random { seed },
        budget: random_budget,
        ..Config::default()
    });
    let random = rx.explore(spec.run);
    ModelReport {
        name: spec.name,
        invariant: spec.invariant,
        exhaustive: exhaustive.stats,
        random: random.stats,
        seed,
        violation: random.violation,
    }
}

/// Runs the whole suite. Each model's random pass gets a distinct seed
/// derived from `seed` so runs are reproducible end to end.
pub fn run_all(seed: u64, exhaustive_budget: usize, random_budget: usize) -> Vec<ModelReport> {
    all_models()
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let model_seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
            check_model(spec, model_seed, exhaustive_budget, random_budget)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Acceptance: all pool invariants hold over at least 10,000 distinct
    /// interleavings, reproducibly from the fixed suite seed.
    #[test]
    fn pool_invariants_hold_across_ten_thousand_interleavings() {
        let reports = run_all(0xC0FF_EE00, 2_000, 4_000);
        let mut total = 0u64;
        for r in &reports {
            assert!(r.violation.is_none(), "{}: {:?}", r.name, r.violation);
            total += r.distinct();
        }
        assert!(
            total >= 10_000,
            "only {total} distinct interleavings explored across the suite"
        );
    }

    /// Acceptance: the suite is deterministic — same seed, same counts.
    #[test]
    fn suite_is_reproducible_from_the_seed() {
        let a = run_all(7, 300, 300);
        let b = run_all(7, 300, 300);
        for (ra, rb) in a.iter().zip(b.iter()) {
            assert_eq!(ra.name, rb.name);
            assert_eq!(ra.exhaustive.interleavings, rb.exhaustive.interleavings);
            assert_eq!(ra.exhaustive.distinct, rb.exhaustive.distinct);
            assert_eq!(ra.random.distinct, rb.random.distinct);
            assert_eq!(
                ra.exhaustive.ops + ra.random.ops,
                rb.exhaustive.ops + rb.random.ops
            );
        }
    }

    /// Acceptance: the seeded mutation — `ReadyGate::publish` weakened
    /// from `Release` to `Relaxed` — is caught as a data race.
    #[test]
    fn weakened_publish_store_is_caught() {
        let mut ex = Explorer::new(Config::default());
        let outcome = ex.explore(model_gate_stream_weak_publish);
        let v = outcome
            .violation
            .expect("the checker must catch the relaxed publish");
        assert!(v.message.contains("data race"), "{v}");
    }

    /// The sound gate protocol survives the same exploration that kills
    /// the mutated one (checker sensitivity, not blanket suspicion).
    #[test]
    fn sound_publish_survives_the_same_exploration() {
        let mut ex = Explorer::new(Config::default());
        let outcome = ex.explore(model_gate_stream);
        assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
    }
}
