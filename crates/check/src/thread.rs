//! Shadow of the used subset of `std::thread`.
//!
//! Spawned closures become model threads driven by the scheduler in
//! [`crate::rt`]; the OS-level threads underneath come from the
//! explorer's reusable lane pool, so models pay no per-execution spawn
//! cost. Every spawned thread must be joined before the model closure
//! returns — leaking one is reported as a violation (a real pool that
//! leaks threads on shutdown is a bug the checker should catch, not
//! tolerate).

use crate::rt::{self, Tid};
use std::any::Any;
use std::sync::{Arc, Mutex, PoisonError};

/// Shadow of `std::thread::JoinHandle`.
#[derive(Debug)]
pub struct JoinHandle<T> {
    vid: Tid,
    slot: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish (a visible, enabledness-gated
    /// operation) and returns its result, or the panic payload if the
    /// thread panicked.
    pub fn join(self) -> Result<T, Box<dyn Any + Send>> {
        if let Some(payload) = rt::join_thread(self.vid) {
            return Err(payload);
        }
        // The slot is written by the child before its Finish operation
        // and read here after Join, which the scheduler orders after
        // Finish — the real lock below is therefore uncontended.
        let taken = self
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        match taken {
            Some(v) => Ok(v),
            None => Err(Box::new("model thread produced no result (torn down)")),
        }
    }
}

/// Spawns a model thread. Mirrors `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let slot = Arc::new(Mutex::new(None));
    let out = Arc::clone(&slot);
    let vid = rt::spawn_thread(Box::new(move || {
        let v = f();
        *out.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
    }));
    JoinHandle { vid, slot }
}

/// Shadow of `std::thread::Builder` (name is accepted and ignored — the
/// OS lanes carry their own names).
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread name (recorded for API parity, not used).
    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    /// Spawns the thread; infallible in the model, `io::Result` for API
    /// parity with `std`.
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Ok(spawn(f))
    }
}
