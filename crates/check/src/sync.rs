//! Shadow synchronization primitives.
//!
//! Drop-in replacements for the `std::sync` types the worker pool uses.
//! Each one registers an object with the active [`crate::Explorer`]
//! execution and turns every access into a visible operation the
//! scheduler can interleave and the vector-clock engine can check. The
//! APIs mirror `std` exactly (including `LockResult` plumbing, though the
//! shadow lock never poisons) so `pilfill-exec` can swap them in with a
//! `cfg` switch and zero call-site changes.
//!
//! [`RaceCell`] has no `std` counterpart: it models *plain* (non-atomic)
//! shared data, the thing the pool's protocols exist to protect. Reads
//! and writes are checked against the happens-before relation and any
//! unordered pair is reported as a data race.

use crate::rt::{self, ObjKind, OpArg, OpDesc, OpKind, OpOut};
use std::cell::UnsafeCell;
use std::sync::atomic::Ordering;
use std::sync::LockResult;

fn load_acquires(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn store_releases(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

macro_rules! shadow_atomic {
    ($name:ident, $prim:ty, $to:expr, $from:expr) => {
        /// Shadow of the `std::sync::atomic` type of the same name: the
        /// value lives in the scheduler, every access is a visible,
        /// clock-tracked operation.
        #[derive(Debug)]
        pub struct $name {
            id: usize,
        }

        impl $name {
            /// Creates the atomic with an initial value, registering it
            /// with the active execution.
            pub fn new(v: $prim) -> Self {
                Self {
                    id: rt::register(ObjKind::Atomic, ($to)(v)),
                }
            }

            /// Atomic load with `order` semantics.
            pub fn load(&self, order: Ordering) -> $prim {
                let out = rt::op(
                    OpDesc::new(
                        self.id,
                        OpKind::AtomicLoad {
                            acquire: load_acquires(order),
                        },
                    ),
                    OpArg::None,
                );
                ($from)(out.val())
            }

            /// Atomic store with `order` semantics.
            pub fn store(&self, v: $prim, order: Ordering) {
                rt::op(
                    OpDesc::new(
                        self.id,
                        OpKind::AtomicStore {
                            release: store_releases(order),
                        },
                    ),
                    OpArg::Store(($to)(v)),
                );
            }

            /// Atomic fetch-add, returning the previous value.
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                let out = self.rmw(order, OpArg::Add(($to)(v)));
                ($from)(out.val())
            }

            /// Atomic fetch-sub, returning the previous value.
            pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                let out = self.rmw(order, OpArg::Sub(($to)(v)));
                ($from)(out.val())
            }

            /// Atomic swap, returning the previous value.
            pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                let out = self.rmw(order, OpArg::Swap(($to)(v)));
                ($from)(out.val())
            }

            /// Atomic compare-exchange; both orderings are approximated
            /// by `success` (the checker treats SeqCst as AcqRel anyway).
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                _failure: Ordering,
            ) -> Result<$prim, $prim> {
                let out = self.rmw(
                    success,
                    OpArg::Cx {
                        expect: ($to)(current),
                        new: ($to)(new),
                    },
                );
                match out {
                    OpOut::Cx(Ok(v)) => Ok(($from)(v)),
                    OpOut::Cx(Err(v)) => Err(($from)(v)),
                    other => Ok(($from)(other.val())),
                }
            }

            fn rmw(&self, order: Ordering, arg: OpArg) -> OpOut {
                rt::op(
                    OpDesc::new(
                        self.id,
                        OpKind::AtomicRmw {
                            acquire: load_acquires(order),
                            release: store_releases(order),
                        },
                    ),
                    arg,
                )
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }
    };
}

shadow_atomic!(AtomicUsize, usize, |v: usize| v as u64, |v: u64| {
    // Model values originate from usize; the round-trip is lossless on
    // 64-bit targets. pilfill: allow(as-cast)
    v as usize
});
shadow_atomic!(AtomicU64, u64, |v: u64| v, |v: u64| v);
shadow_atomic!(AtomicBool, bool, |v: bool| u64::from(v), |v: u64| v != 0);

/// Shadow of `std::sync::Mutex`: acquisition is an enabledness-gated
/// visible operation, so lock cycles surface as detected deadlocks
/// instead of hangs.
#[derive(Debug)]
pub struct Mutex<T> {
    id: usize,
    data: UnsafeCell<T>,
}

// SAFETY: the scheduler runs exactly one model thread at a time and
// grants MutexLock only while the mutex is free, so all access to `data`
// through guards is mutually exclusive and ordered by the baton handoff.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above — `&Mutex<T>` only exposes `data` through guards whose
// creation the scheduler serializes.
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates the mutex, registering it with the active execution.
    pub fn new(value: T) -> Self {
        Self {
            id: rt::register(ObjKind::Mutex, 0),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the mutex. Never returns `Err`: the shadow lock does not
    /// poison (panics abort the whole model execution instead).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        rt::op(OpDesc::new(self.id, OpKind::MutexLock), OpArg::None);
        Ok(MutexGuard { mutex: self })
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// Shadow of `std::sync::MutexGuard`; unlocking on drop is a visible
/// operation.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: this guard exists only between a granted MutexLock and
        // its MutexUnlock; the scheduler enforces mutual exclusion, so no
        // other reference to the data is live.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — exclusive access is guaranteed by the
        // scheduler for the guard's lifetime.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        rt::op(OpDesc::new(self.mutex.id, OpKind::MutexUnlock), OpArg::None);
    }
}

/// Shadow of `std::sync::Condvar`. A wait is modeled as two visible
/// operations: release-and-enqueue, then a reacquire that is enabled only
/// once a notification arrived and the mutex is free. There are no
/// spurious wakeups (every real-world wakeup path must therefore be
/// driven by an explicit notify in the model).
#[derive(Debug, Default)]
pub struct Condvar {
    id: std::cell::OnceCell<usize>,
}

// SAFETY: the OnceCell is only accessed by model threads, which the
// scheduler runs one at a time; initialization races cannot occur.
unsafe impl Send for Condvar {}
// SAFETY: as above — model threads are serialized by the baton protocol.
unsafe impl Sync for Condvar {}

impl Condvar {
    /// Creates the condvar; the object registers lazily on first use so
    /// `Condvar::new` can stay `const`-shaped like `std`'s.
    pub fn new() -> Self {
        Self {
            id: std::cell::OnceCell::new(),
        }
    }

    fn id(&self) -> usize {
        *self.id.get_or_init(|| rt::register(ObjKind::Condvar, 0))
    }

    /// Releases `guard`'s mutex, waits for a notification, reacquires.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let mutex = guard.mutex;
        // The two-phase wait replaces the guard's normal drop; forgetting
        // it skips the MutexUnlock that CvWait performs itself.
        std::mem::forget(guard);
        let cv = self.id();
        rt::op(
            OpDesc::with_obj2(cv, mutex.id, OpKind::CvWait),
            OpArg::Store(u64::try_from(mutex.id).unwrap_or(0)),
        );
        rt::op(
            OpDesc::with_obj2(cv, mutex.id, OpKind::CvReacquire),
            OpArg::None,
        );
        Ok(MutexGuard { mutex })
    }

    /// Wakes every current waiter.
    pub fn notify_all(&self) {
        rt::op(OpDesc::new(self.id(), OpKind::CvNotifyAll), OpArg::None);
    }

    /// Wakes one current waiter (the lowest thread id, deterministically).
    pub fn notify_one(&self) {
        rt::op(OpDesc::new(self.id(), OpKind::CvNotifyOne), OpArg::None);
    }
}

/// Plain shared data under race detection.
///
/// Models a non-atomic memory location (a tile slot, a result buffer).
/// Every access is checked against happens-before: a read must be ordered
/// after the last write, a write must be ordered after every prior
/// access. Unordered pairs are reported as data races — the checker's
/// equivalent of UB.
#[derive(Debug)]
pub struct RaceCell<T> {
    id: usize,
    data: UnsafeCell<T>,
}

// SAFETY: model threads run one at a time under the baton protocol, so
// the raw accesses below never overlap in real time; logically-racy
// accesses are caught by the clock check before data is returned.
unsafe impl<T: Send> Send for RaceCell<T> {}
// SAFETY: as above — real-time exclusivity comes from the scheduler,
// logical races are detected and abort the execution.
unsafe impl<T: Send> Sync for RaceCell<T> {}

impl<T: Copy> RaceCell<T> {
    /// Creates the cell; the construction counts as the initial write.
    pub fn new(value: T) -> Self {
        Self {
            id: rt::register(ObjKind::Cell, 0),
            data: UnsafeCell::new(value),
        }
    }

    /// Race-checked read.
    pub fn get(&self) -> T {
        rt::op(OpDesc::new(self.id, OpKind::CellRead), OpArg::None);
        // SAFETY: the scheduler serializes model threads, so this
        // non-overlapping read is valid; ordering violations were already
        // reported by the CellRead operation above.
        unsafe { *self.data.get() }
    }

    /// Race-checked write.
    pub fn set(&self, value: T) {
        rt::op(OpDesc::new(self.id, OpKind::CellWrite), OpArg::None);
        // SAFETY: as in `get` — the store cannot overlap another access
        // in real time; logical races were checked by CellWrite.
        unsafe { *self.data.get() = value };
    }
}
