//! `pilfill-check` CLI: run the worker-pool model suite and write
//! `check-report.json`.
//!
//! ```text
//! cargo run -p pilfill-check --release -- \
//!     [--seed N] [--budget N] [--random-budget N] \
//!     [--min-distinct N] [--out PATH] [--model NAME]
//! ```
//!
//! Exits non-zero if any model reports a violation or the suite explored
//! fewer than `--min-distinct` interleavings (default 10,000 — the
//! acceptance floor; pass `--min-distinct 0` for quick smoke runs).

use pilfill_check::models;
use pilfill_check::report::render_report;
use std::process::ExitCode;

struct Args {
    seed: u64,
    budget: usize,
    random_budget: usize,
    min_distinct: u64,
    out: String,
    model: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            seed: 0xC0FF_EE00,
            budget: 2_000,
            random_budget: 4_000,
            min_distinct: 10_000,
            out: "check-report.json".to_owned(),
            model: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--seed" => args.seed = parse_num(&take("--seed")?)?,
            "--budget" => args.budget = parse_num(&take("--budget")?)?,
            "--random-budget" => args.random_budget = parse_num(&take("--random-budget")?)?,
            "--min-distinct" => args.min_distinct = parse_num(&take("--min-distinct")?)?,
            "--out" => args.out = take("--out")?,
            "--model" => args.model = Some(take("--model")?),
            "--help" | "-h" => {
                return Err(
                    "usage: pilfill-check [--seed N] [--budget N] [--random-budget N] \
                     [--min-distinct N] [--out PATH] [--model NAME]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("invalid numeric argument: {s}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let specs = models::all_models();
    if let Some(name) = &args.model {
        if !specs.iter().any(|s| s.name == *name) {
            eprintln!("unknown model: {name}");
            eprintln!(
                "available: {}",
                specs.iter().map(|s| s.name).collect::<Vec<_>>().join(", ")
            );
            return ExitCode::FAILURE;
        }
    }

    let mut reports = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        if args.model.as_deref().is_some_and(|m| m != spec.name) {
            continue;
        }
        let model_seed = args
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
        let r = models::check_model(spec, model_seed, args.budget, args.random_budget);
        let status = match &r.violation {
            Some(v) => format!("VIOLATION: {v}"),
            None => "ok".to_owned(),
        };
        println!(
            "{:<14} {:>7} exhaustive ({}{}) + {:>6} random = {:>7} distinct  [{}]",
            r.name,
            r.exhaustive.distinct,
            if r.exhaustive.complete {
                "complete"
            } else {
                "budget"
            },
            if r.exhaustive.pruned > 0 {
                format!(", {} pruned", r.exhaustive.pruned)
            } else {
                String::new()
            },
            r.random.distinct,
            r.distinct(),
            status
        );
        reports.push(r);
    }

    let total: u64 = reports.iter().map(models::ModelReport::distinct).sum();
    let failed = reports.iter().any(|r| r.violation.is_some());
    let json = render_report(args.seed, &reports);
    if let Err(e) = std::fs::write(&args.out, format!("{json}\n")) {
        eprintln!("cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!(
        "total: {total} distinct interleavings across {} model(s); report: {}",
        reports.len(),
        args.out
    );

    if failed {
        eprintln!("model violations found");
        return ExitCode::FAILURE;
    }
    if args.model.is_none() && total < args.min_distinct {
        eprintln!(
            "explored {total} distinct interleavings, below the floor of {}",
            args.min_distinct
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
