//! PIL-Fill bounded model checker.
//!
//! A std-only, loom-style checker for the worker-pool protocols in
//! `pilfill-exec`. Models are ordinary closures written against the
//! shadow primitives in [`sync`] and [`thread`]; [`Explorer`] runs each
//! model under many thread schedules — exhaustively with DPOR-style
//! sleep-set pruning and a preemption bound, or randomly from a seed —
//! while a vector-clock engine checks every access against the
//! happens-before relation. Deadlocks, data races, lost notifications,
//! failed model assertions, and leaked threads all surface as
//! [`Violation`]s carrying the exact schedule that triggered them.
//!
//! The pool protocols under check (epoch publication, atomic-cursor
//! batch claiming, disjoint-slot merging, gate streaming, panic
//! propagation) live in [`models`]; `cargo run -p pilfill-check` runs
//! them all and writes `check-report.json`.

pub mod clock;
pub mod models;
pub mod report;
mod rt;
pub mod sync;
pub mod thread;

pub use rt::{Config, Explorer, Outcome, Stats, Strategy, Violation};
