//! Property-based tests for the density engine: window sums against brute
//! force, and budgeter invariants over random density landscapes.

use pilfill_density::{lp_budget, montecarlo_budget, DensityMap, FixedDissection};
use pilfill_geom::Rect;
use proptest::prelude::*;

const FEATURE_AREA: i64 = 90_000; // 300 x 300

fn dissection() -> FixedDissection {
    FixedDissection::new(Rect::new(0, 0, 24_000, 24_000), 8_000, 2).expect("dissection")
}

/// A random density map: arbitrary per-tile areas within the tile size.
fn map_strategy() -> impl Strategy<Value = DensityMap> {
    let dis = dissection();
    let n = dis.tiles().len();
    prop::collection::vec(0i64..8_000_000, n..=n).prop_map(move |areas| {
        let mut map = DensityMap::zeros(&dis);
        for (i, &a) in areas.iter().enumerate() {
            let cell = (i % dis.tiles().nx(), i / dis.tiles().nx());
            map.add_tile_area(cell, a);
        }
        map
    })
}

fn slack_strategy() -> impl Strategy<Value = Vec<u32>> {
    let n = dissection().tiles().len();
    prop::collection::vec(0u32..60, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn window_area_matches_brute_force(map in map_strategy()) {
        let dis = *map.dissection();
        for w in dis.windows() {
            let brute: i64 = w.tiles().map(|c| map.tile_area(c)).sum();
            prop_assert_eq!(map.window_area(w), brute);
        }
    }

    #[test]
    fn analysis_bounds_are_consistent(map in map_strategy()) {
        let a = map.analyze();
        prop_assert!(a.min_window_density <= a.mean_window_density + 1e-12);
        prop_assert!(a.mean_window_density <= a.max_window_density + 1e-12);
        prop_assert!((a.variation - (a.max_window_density - a.min_window_density)).abs() < 1e-12);
    }

    #[test]
    fn montecarlo_budget_invariants(
        map in map_strategy(),
        slack in slack_strategy(),
        bound in 0.1f64..0.6,
    ) {
        let budget = montecarlo_budget(&map, &slack, FEATURE_AREA, bound).expect("mc");
        let dis = *map.dissection();
        let nx = dis.tiles().nx();
        // Slack respected.
        for (cell, f) in budget.iter() {
            prop_assert!(f <= slack[cell.1 * nx + cell.0]);
        }
        // Window bound respected for added fill (windows already above the
        // bound receive nothing extra beyond it).
        let mut after = map.clone();
        for (cell, f) in budget.iter() {
            after.add_tile_area(cell, f as i64 * FEATURE_AREA);
        }
        for w in dis.windows() {
            let before_d = map.window_density(w);
            let after_d = after.window_density(w);
            prop_assert!(
                after_d <= bound.max(before_d) + 1e-9,
                "window over bound: {before_d} -> {after_d} (bound {bound})"
            );
        }
        // Monotone improvement of the minimum.
        prop_assert!(
            after.analyze().min_window_density + 1e-12
                >= map.analyze().min_window_density
        );
    }

    #[test]
    fn lp_budget_never_worse_min_density_than_mc(
        map in map_strategy(),
        bound in 0.2f64..0.5,
    ) {
        // Uniform generous slack so the LP is exercised, small grid.
        let slack = vec![40u32; map.dissection().tiles().len()];
        let lp = lp_budget(&map, &slack, FEATURE_AREA, bound).expect("lp");
        let mc = montecarlo_budget(&map, &slack, FEATURE_AREA, bound).expect("mc");
        let apply = |b: &pilfill_density::FillBudget| {
            let mut m = map.clone();
            for (cell, f) in b.iter() {
                m.add_tile_area(cell, f as i64 * FEATURE_AREA);
            }
            m.analyze().min_window_density
        };
        // The LP relaxation bounds the best achievable min density, but
        // its per-tile floor rounding can lose up to ~2 features per tile
        // of a window (r^2 = 4 tiles) relative to the greedy integer
        // construction.
        let window_area = 8_000f64 * 8_000.0;
        let tolerance = 8.0 * FEATURE_AREA as f64 / window_area;
        prop_assert!(
            apply(&lp) >= apply(&mc) - tolerance,
            "lp {} well below mc {}", apply(&lp), apply(&mc)
        );
    }
}
