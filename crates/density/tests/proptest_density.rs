//! Randomized tests for the density engine: window sums against brute
//! force, and budgeter invariants over random density landscapes. Driven
//! by the in-repo seeded PRNG so every run explores the same cases.

use pilfill_density::{lp_budget, montecarlo_budget, DensityMap, FixedDissection};
use pilfill_geom::Rect;
use pilfill_prng::rngs::StdRng;
use pilfill_prng::{Rng, SeedableRng};

const FEATURE_AREA: i64 = 90_000; // 300 x 300

fn dissection() -> FixedDissection {
    FixedDissection::new(Rect::new(0, 0, 24_000, 24_000), 8_000, 2).expect("dissection")
}

/// A random density map: arbitrary per-tile areas within the tile size.
fn rand_map(rng: &mut StdRng) -> DensityMap {
    let dis = dissection();
    let mut map = DensityMap::zeros(&dis);
    let nx = dis.tiles().nx();
    map.add_tile_areas((0..dis.tiles().len()).map(|i| {
        let cell = (i % nx, i / nx);
        (cell, rng.gen_range(0i64..8_000_000))
    }));
    map
}

fn rand_slack(rng: &mut StdRng) -> Vec<u32> {
    (0..dissection().tiles().len())
        .map(|_| rng.gen_range(0u32..60))
        .collect()
}

#[test]
fn window_area_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(0xDE_0001);
    for _ in 0..48 {
        let map = rand_map(&mut rng);
        let dis = *map.dissection();
        for w in dis.windows() {
            let brute: i64 = w.tiles().map(|c| map.tile_area(c)).sum();
            assert_eq!(map.window_area(w), brute);
        }
    }
}

#[test]
fn analysis_bounds_are_consistent() {
    let mut rng = StdRng::seed_from_u64(0xDE_0002);
    for _ in 0..48 {
        let map = rand_map(&mut rng);
        let a = map.analyze();
        assert!(a.min_window_density <= a.mean_window_density + 1e-12);
        assert!(a.mean_window_density <= a.max_window_density + 1e-12);
        assert!((a.variation - (a.max_window_density - a.min_window_density)).abs() < 1e-12);
    }
}

#[test]
fn montecarlo_budget_invariants() {
    let mut rng = StdRng::seed_from_u64(0xDE_0003);
    for _ in 0..48 {
        let map = rand_map(&mut rng);
        let slack = rand_slack(&mut rng);
        let bound = rng.gen_range(0.1f64..0.6);
        let budget = montecarlo_budget(&map, &slack, FEATURE_AREA, bound).expect("mc");
        let dis = *map.dissection();
        let nx = dis.tiles().nx();
        // Slack respected.
        for (cell, f) in budget.iter() {
            assert!(f <= slack[cell.1 * nx + cell.0]);
        }
        // Window bound respected for added fill (windows already above the
        // bound receive nothing extra beyond it).
        let mut after = map.clone();
        after.add_tile_areas(
            budget
                .iter()
                .map(|(cell, f)| (cell, f as i64 * FEATURE_AREA)),
        );
        for w in dis.windows() {
            let before_d = map.window_density(w);
            let after_d = after.window_density(w);
            assert!(
                after_d <= bound.max(before_d) + 1e-9,
                "window over bound: {before_d} -> {after_d} (bound {bound})"
            );
        }
        // Monotone improvement of the minimum.
        assert!(after.analyze().min_window_density + 1e-12 >= map.analyze().min_window_density);
    }
}

#[test]
fn lp_budget_never_worse_min_density_than_mc() {
    let mut rng = StdRng::seed_from_u64(0xDE_0004);
    for _ in 0..24 {
        let map = rand_map(&mut rng);
        let bound = rng.gen_range(0.2f64..0.5);
        // Uniform generous slack so the LP is exercised, small grid.
        let slack = vec![40u32; map.dissection().tiles().len()];
        let lp = lp_budget(&map, &slack, FEATURE_AREA, bound).expect("lp");
        let mc = montecarlo_budget(&map, &slack, FEATURE_AREA, bound).expect("mc");
        let apply = |b: &pilfill_density::FillBudget| {
            let mut m = map.clone();
            m.add_tile_areas(b.iter().map(|(cell, f)| (cell, f as i64 * FEATURE_AREA)));
            m.analyze().min_window_density
        };
        // The LP relaxation bounds the best achievable min density, but
        // its per-tile floor rounding can lose up to ~2 features per tile
        // of a window (r^2 = 4 tiles) relative to the greedy integer
        // construction.
        let window_area = 8_000f64 * 8_000.0;
        let tolerance = 8.0 * FEATURE_AREA as f64 / window_area;
        assert!(
            apply(&lp) >= apply(&mc) - tolerance,
            "lp {} well below mc {}",
            apply(&lp),
            apply(&mc)
        );
    }
}
