//! Fill budgeting: how many fill features each tile must receive so that
//! window densities become as uniform as possible without exceeding an
//! upper bound — the budgeting step of the "normal fill" baseline
//! (reference \[3\] of the paper; invoked as "Run LP/Monte-Carlo" in the
//! Greedy PIL-Fill algorithm, Figure 8).
//!
//! Two interchangeable implementations are provided:
//!
//! - [`lp_budget`]: the exact Min-Var linear program (maximize the minimum
//!   window density), practical for small tile grids;
//! - [`montecarlo_budget`]: the scalable iterative heuristic — repeatedly
//!   add one feature to the neediest window's best tile — used by the main
//!   experiment flow.
//!
//! Both are density-only: they decide *how much* fill per tile, never
//! *where* inside the tile. The PIL-Fill methods all receive the same
//! per-tile budget, which is what makes their density quality identical
//! while their delay impact differs.

use crate::{DensityMap, FixedDissection};
use pilfill_geom::CellIndex;
use pilfill_solver::{Model, Objective, Sense, SolveError};
use std::collections::BinaryHeap;

/// Error from fill budgeting.
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetError {
    /// `slack` length does not match the tile count.
    DimensionMismatch {
        /// Tiles in the dissection.
        expected: usize,
        /// Provided slack entries.
        got: usize,
    },
    /// The underlying LP failed.
    Solver(SolveError),
    /// Parameters out of range.
    InvalidParameter(String),
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "slack has {got} entries, dissection has {expected} tiles"
                )
            }
            BudgetError::Solver(e) => write!(f, "budget LP failed: {e}"),
            BudgetError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for BudgetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BudgetError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for BudgetError {
    fn from(e: SolveError) -> Self {
        BudgetError::Solver(e)
    }
}

/// The number of fill features each tile must receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FillBudget {
    nx: usize,
    features: Vec<u32>,
}

impl FillBudget {
    fn new(dissection: &FixedDissection, features: Vec<u32>) -> Self {
        debug_assert_eq!(features.len(), dissection.tiles().len());
        Self {
            nx: dissection.tiles().nx(),
            features,
        }
    }

    /// Features budgeted for tile `(ix, iy)`.
    pub fn features(&self, (ix, iy): CellIndex) -> u32 {
        self.features[iy * self.nx + ix]
    }

    /// Total features across all tiles.
    pub fn total(&self) -> u64 {
        self.features.iter().map(|&f| f as u64).sum()
    }

    /// Iterates `(cell, features)` for tiles with a non-zero budget.
    pub fn iter(&self) -> impl Iterator<Item = (CellIndex, u32)> + '_ {
        self.features
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 0)
            .map(move |(i, &f)| ((i % self.nx, i / self.nx), f))
    }
}

fn check_inputs(
    existing: &DensityMap,
    slack: &[u32],
    feature_area: i64,
    upper_bound: f64,
) -> Result<(), BudgetError> {
    let expected = existing.dissection().tiles().len();
    if slack.len() != expected {
        return Err(BudgetError::DimensionMismatch {
            expected,
            got: slack.len(),
        });
    }
    if feature_area <= 0 {
        return Err(BudgetError::InvalidParameter(format!(
            "feature area must be positive (got {feature_area})"
        )));
    }
    if !(0.0..=1.0).contains(&upper_bound) {
        return Err(BudgetError::InvalidParameter(format!(
            "upper bound must be in [0, 1] (got {upper_bound})"
        )));
    }
    Ok(())
}

/// Exact Min-Var budgeting LP: maximize the minimum window density subject
/// to the per-window `upper_bound` and per-tile `slack` capacities
/// (in fill-feature counts). The relaxed per-tile counts are rounded down,
/// so the result is always feasible.
///
/// Intended for small grids (≲ 500 tiles); the main flow uses
/// [`montecarlo_budget`].
///
/// # Errors
///
/// Returns [`BudgetError::DimensionMismatch`] / `InvalidParameter` on bad
/// inputs and [`BudgetError::Solver`] if the LP fails (e.g. the existing
/// density already violates `upper_bound` makes it infeasible only if
/// windows exceed the bound before any fill; such windows are allowed — the
/// constraint only limits *added* fill).
pub fn lp_budget(
    existing: &DensityMap,
    slack: &[u32],
    feature_area: i64,
    upper_bound: f64,
) -> Result<FillBudget, BudgetError> {
    check_inputs(existing, slack, feature_area, upper_bound)?;
    let dis = *existing.dissection();
    let grid = dis.tiles();
    let n = grid.len();

    let mut model = Model::new(Objective::Maximize);
    // Per-tile fill feature count, relaxed to continuous.
    let vars: Vec<_> = (0..n)
        .map(|i| model.add_var(0.0, slack[i] as f64, 0.0))
        .collect();
    // M: the minimum window density (the objective).
    let m = model.add_var(0.0, 1.0, 1.0);

    let fa = feature_area as f64;
    for w in dis.windows() {
        let rect_area = dis.window_rect(w).area() as f64;
        let a0 = existing.window_area(w) as f64;
        let tile_vars: Vec<_> = w
            .tiles()
            .map(|(ix, iy)| (vars[iy * grid.nx() + ix], fa))
            .collect();
        // Upper bound on *added* fill: A0 + fa * sum(n) <= max(U, current) * area.
        let ub = upper_bound.max(a0 / rect_area);
        model.add_constraint(tile_vars.clone(), Sense::Le, ub * rect_area - a0);
        // Min density: A0 + fa * sum(n) >= M * area.
        let mut terms = tile_vars;
        terms.push((m, -rect_area));
        model.add_constraint(terms, Sense::Ge, -a0);
    }

    let sol = model.solve_lp()?;
    let features = vars
        .iter()
        .map(|&v| pilfill_geom::units::saturating_count(sol.value(v).floor().max(0.0) as u64))
        .collect();
    Ok(FillBudget::new(&dis, features))
}

/// A heap entry of the budget loop's lazy priority queue. The `BinaryHeap`
/// max-heap pops the *smallest* `(density, window)` because the `Ord` below
/// is reversed; `version` marks entries stale (not part of the ordering).
#[derive(Debug, Clone, Copy)]
struct NeediestWindow {
    density: f64,
    wi: usize,
    version: u64,
}

impl Ord for NeediestWindow {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the max-heap then yields the lowest density first, ties
        // towards the lower window index — exactly the first-minimum rule
        // of the `min_by(total_cmp)` scan this heap replaces.
        other
            .density
            .total_cmp(&self.density)
            .then_with(|| other.wi.cmp(&self.wi))
    }
}

impl PartialOrd for NeediestWindow {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for NeediestWindow {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for NeediestWindow {}

/// Scalable Monte-Carlo/greedy budgeting: repeatedly pick the window with
/// the lowest density and add one feature to its tile with the most
/// remaining slack, subject to no window exceeding `upper_bound`. Stops
/// when no minimum-density window can accept more fill.
///
/// The neediest window is tracked with a lazy min-heap (densities only
/// ever increase, so stale entries sort at or before their window's live
/// entry and are discarded on pop by a version check), making each of the
/// `total()` iterations O(log W) instead of an O(W) scan.
///
/// Deterministic: ties break towards lower tile index, and the heap's
/// tie-break reproduces the historical linear scan exactly.
///
/// # Errors
///
/// Returns [`BudgetError::DimensionMismatch`] / `InvalidParameter` on bad
/// inputs.
pub fn montecarlo_budget(
    existing: &DensityMap,
    slack: &[u32],
    feature_area: i64,
    upper_bound: f64,
) -> Result<FillBudget, BudgetError> {
    check_inputs(existing, slack, feature_area, upper_bound)?;
    let dis = *existing.dissection();
    let grid = dis.tiles();
    let nx = grid.nx();
    let n = grid.len();
    let windows: Vec<_> = dis.windows().collect();

    // Window areas and current feature areas.
    let w_area: Vec<f64> = windows
        .iter()
        .map(|&w| dis.window_rect(w).area() as f64)
        .collect();
    let mut w_fill: Vec<f64> = windows
        .iter()
        .map(|&w| existing.window_area(w) as f64)
        .collect();
    // Windows covering each tile, and tiles of each window, flattened once
    // so the per-feature hot loop never re-derives grid arithmetic.
    let mut windows_of_tile: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut tiles_of_window: Vec<Vec<usize>> = vec![Vec::new(); windows.len()];
    for (wi, w) in windows.iter().enumerate() {
        for (ix, iy) in w.tiles() {
            windows_of_tile[iy * nx + ix].push(wi);
            tiles_of_window[wi].push(iy * nx + ix);
        }
    }

    let mut remaining: Vec<u32> = slack.to_vec();
    let mut budget = vec![0u32; n];
    let fa = feature_area as f64;
    let mut stuck = vec![false; windows.len()];

    // Cached density-after-one-more-feature per window. The historical
    // acceptance check `after <= upper_bound.max(current) && after <=
    // upper_bound` collapses to `after <= upper_bound` (the max only ever
    // raises the first bound), and `after` is the same quotient
    // `(w_fill + fa) / w_area` recomputed here whenever `w_fill` changes —
    // identical operands and order, so the cached compare is bit-identical
    // to dividing inside the filter.
    let mut d_after: Vec<f64> = (0..windows.len())
        .map(|wi| (w_fill[wi] + fa) / w_area[wi])
        .collect();

    // Lazy min-heap over (density, window). Every non-stuck window has
    // exactly one live entry (the one whose `version` matches); entries
    // left behind by density updates are stale and skipped on pop.
    let mut version = vec![0u64; windows.len()];
    let mut heap: BinaryHeap<NeediestWindow> = (0..windows.len())
        .map(|wi| NeediestWindow {
            density: w_fill[wi] / w_area[wi],
            wi,
            version: 0,
        })
        .collect();

    while let Some(entry) = heap.pop() {
        let wi = entry.wi;
        if stuck[wi] || entry.version != version[wi] {
            continue;
        }

        // Best tile in that window: most remaining slack, addition must not
        // push any covering window above the bound (never above it unless
        // it already exceeded the bound from drawn features alone — then
        // fill there is simply forbidden).
        let candidate = tiles_of_window[wi]
            .iter()
            .copied()
            .filter(|&t| remaining[t] > 0)
            .filter(|&t| {
                windows_of_tile[t]
                    .iter()
                    .all(|&cw| d_after[cw] <= upper_bound)
            })
            .max_by_key(|&t| (remaining[t], std::cmp::Reverse(t)));

        match candidate {
            Some(t) => {
                remaining[t] -= 1;
                budget[t] += 1;
                // Stuck windows stay stuck: adding fill elsewhere only
                // raises densities, never creates new capacity, so this is
                // sound. The chosen tile lies inside window `wi`, so `wi`
                // itself is refreshed here and stays in the heap.
                for &cw in &windows_of_tile[t] {
                    w_fill[cw] += fa;
                    d_after[cw] = (w_fill[cw] + fa) / w_area[cw];
                    version[cw] += 1;
                    if !stuck[cw] {
                        heap.push(NeediestWindow {
                            density: w_fill[cw] / w_area[cw],
                            wi: cw,
                            version: version[cw],
                        });
                    }
                }
            }
            None => {
                stuck[wi] = true;
            }
        }
    }

    Ok(FillBudget::new(&dis, budget))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FixedDissection;
    use pilfill_geom::{Dir, Point, Rect};
    use pilfill_layout::{DesignBuilder, LayerId};

    const FEATURE_AREA: i64 = 160_000; // 400 x 400

    fn test_map() -> DensityMap {
        // One dense corner wire, rest empty.
        let design = DesignBuilder::new("d", Rect::new(0, 0, 16_000, 16_000))
            .layer("m3", Dir::Horizontal)
            .net("n", Point::new(0, 1_000))
            .segment("m3", Point::new(0, 1_000), Point::new(7_000, 1_000), 2_000)
            .sink(Point::new(7_000, 1_000))
            .build()
            .expect("valid");
        let dis = FixedDissection::new(design.die, 8_000, 2).expect("valid");
        DensityMap::compute(&design, LayerId(0), &dis)
    }

    fn full_slack(map: &DensityMap, per_tile: u32) -> Vec<u32> {
        vec![per_tile; map.dissection().tiles().len()]
    }

    #[test]
    fn lp_budget_improves_min_density() {
        let map = test_map();
        let slack = full_slack(&map, 40);
        let before = map.analyze();
        let budget = lp_budget(&map, &slack, FEATURE_AREA, 0.4).expect("lp");
        let mut after_map = map.clone();
        for (cell, f) in budget.iter() {
            after_map.add_tile_area(cell, f as i64 * FEATURE_AREA);
        }
        let after = after_map.analyze();
        assert!(after.min_window_density > before.min_window_density);
        assert!(after.max_window_density <= 0.4 + 1e-9);
        assert!(after.variation < before.variation);
    }

    #[test]
    fn montecarlo_budget_improves_min_density() {
        let map = test_map();
        let slack = full_slack(&map, 40);
        let before = map.analyze();
        let budget = montecarlo_budget(&map, &slack, FEATURE_AREA, 0.4).expect("mc");
        let mut after_map = map.clone();
        for (cell, f) in budget.iter() {
            after_map.add_tile_area(cell, f as i64 * FEATURE_AREA);
        }
        let after = after_map.analyze();
        assert!(after.min_window_density > before.min_window_density);
        assert!(after.max_window_density <= 0.4 + 1e-9);
    }

    #[test]
    fn budgets_respect_slack() {
        let map = test_map();
        let slack = full_slack(&map, 3);
        for budget in [
            lp_budget(&map, &slack, FEATURE_AREA, 0.5).expect("lp"),
            montecarlo_budget(&map, &slack, FEATURE_AREA, 0.5).expect("mc"),
        ] {
            for (cell, f) in budget.iter() {
                let _ = cell;
                assert!(f <= 3);
            }
        }
    }

    #[test]
    fn zero_slack_means_zero_budget() {
        let map = test_map();
        let slack = full_slack(&map, 0);
        let b = montecarlo_budget(&map, &slack, FEATURE_AREA, 0.5).expect("mc");
        assert_eq!(b.total(), 0);
        let b = lp_budget(&map, &slack, FEATURE_AREA, 0.5).expect("lp");
        assert_eq!(b.total(), 0);
    }

    #[test]
    fn montecarlo_close_to_lp_on_small_grid() {
        let map = test_map();
        let slack = full_slack(&map, 25);
        let apply = |budget: &FillBudget| {
            let mut m = map.clone();
            for (cell, f) in budget.iter() {
                m.add_tile_area(cell, f as i64 * FEATURE_AREA);
            }
            m.analyze().min_window_density
        };
        let lp = lp_budget(&map, &slack, FEATURE_AREA, 0.35).expect("lp");
        let mc = montecarlo_budget(&map, &slack, FEATURE_AREA, 0.35).expect("mc");
        let lp_min = apply(&lp);
        let mc_min = apply(&mc);
        // MC should reach at least 85% of the LP's min-density gain.
        assert!(mc_min >= 0.85 * lp_min, "mc {mc_min} far below lp {lp_min}");
    }

    /// The pre-heap linear-scan budget loop, kept verbatim as the
    /// reference the lazy heap must reproduce bit-for-bit.
    fn montecarlo_budget_by_scan(
        existing: &DensityMap,
        slack: &[u32],
        feature_area: i64,
        upper_bound: f64,
    ) -> FillBudget {
        let dis = *existing.dissection();
        let grid = dis.tiles();
        let nx = grid.nx();
        let n = grid.len();
        let windows: Vec<_> = dis.windows().collect();
        let w_area: Vec<f64> = windows
            .iter()
            .map(|&w| dis.window_rect(w).area() as f64)
            .collect();
        let mut w_fill: Vec<f64> = windows
            .iter()
            .map(|&w| existing.window_area(w) as f64)
            .collect();
        let mut windows_of_tile: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (wi, w) in windows.iter().enumerate() {
            for (ix, iy) in w.tiles() {
                windows_of_tile[iy * nx + ix].push(wi);
            }
        }
        let mut remaining: Vec<u32> = slack.to_vec();
        let mut budget = vec![0u32; n];
        let fa = feature_area as f64;
        let mut stuck = vec![false; windows.len()];
        loop {
            let target = (0..windows.len())
                .filter(|&wi| !stuck[wi])
                .min_by(|&a, &b| (w_fill[a] / w_area[a]).total_cmp(&(w_fill[b] / w_area[b])));
            let Some(wi) = target else { break };
            let candidate = windows[wi]
                .tiles()
                .map(|(ix, iy)| iy * nx + ix)
                .filter(|&t| remaining[t] > 0)
                .filter(|&t| {
                    windows_of_tile[t].iter().all(|&cw| {
                        let after = (w_fill[cw] + fa) / w_area[cw];
                        after <= upper_bound.max(w_fill[cw] / w_area[cw]) && after <= upper_bound
                    })
                })
                .max_by_key(|&t| (remaining[t], std::cmp::Reverse(t)));
            match candidate {
                Some(t) => {
                    remaining[t] -= 1;
                    budget[t] += 1;
                    for &cw in &windows_of_tile[t] {
                        w_fill[cw] += fa;
                    }
                }
                None => stuck[wi] = true,
            }
        }
        FillBudget::new(&dis, budget)
    }

    #[test]
    fn heap_budget_matches_linear_scan_reference() {
        let map = test_map();
        for per_tile in [0u32, 1, 3, 10, 25, 40] {
            for ub in [0.2, 0.35, 0.4, 0.5, 1.0] {
                let slack = full_slack(&map, per_tile);
                let heap = montecarlo_budget(&map, &slack, FEATURE_AREA, ub).expect("mc");
                let scan = montecarlo_budget_by_scan(&map, &slack, FEATURE_AREA, ub);
                assert_eq!(heap, scan, "slack {per_tile}, bound {ub}");
            }
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let map = test_map();
        let slack = vec![1u32; 3];
        assert!(matches!(
            montecarlo_budget(&map, &slack, FEATURE_AREA, 0.5),
            Err(BudgetError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let map = test_map();
        let slack = full_slack(&map, 1);
        assert!(lp_budget(&map, &slack, 0, 0.5).is_err());
        assert!(montecarlo_budget(&map, &slack, FEATURE_AREA, 1.5).is_err());
    }

    #[test]
    fn budget_indexing_round_trips() {
        let map = test_map();
        let slack = full_slack(&map, 10);
        let b = montecarlo_budget(&map, &slack, FEATURE_AREA, 0.5).expect("mc");
        let from_iter: u64 = b.iter().map(|(_, f)| f as u64).sum();
        assert_eq!(from_iter, b.total());
        for (cell, f) in b.iter() {
            assert_eq!(b.features(cell), f);
        }
    }
}
