//! Smoothness metrics for filled layouts, after the companion work the
//! paper builds on (Chen–Kahng–Robins–Zelikovsky, ISPD 2002, reference
//! \[4\]: "Smoothness and Uniformity of Filled Layout").
//!
//! Uniformity (min/max window density) is not the whole CMP story: the
//! *gradient* between neighbouring windows matters too, and density must
//! be controlled at several window scales at once. This module provides:
//!
//! - [`gradient_analysis`]: the maximum and mean absolute density
//!   difference between overlapping windows one tile apart (the "Type II"
//!   smoothness of the reference);
//! - [`multi_scale_analysis`]: min/max/variation at several window sizes
//!   over the same layout, catching fill that looks uniform at one scale
//!   but lumpy at another.

use crate::{DensityMap, DissectionError, FixedDissection};
use pilfill_geom::Coord;
use pilfill_layout::{Design, LayerId};

/// Neighbouring-window gradient statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "a gradient analysis is pure; dropping it discards the statistics"]
pub struct GradientAnalysis {
    /// Largest |density difference| between windows one tile apart.
    pub max_gradient: f64,
    /// Mean |density difference| over all adjacent window pairs.
    pub mean_gradient: f64,
    /// Number of adjacent pairs inspected.
    pub pairs: usize,
}

/// Computes the window-to-window density gradient of a map (windows whose
/// anchors differ by one tile horizontally or vertically).
///
/// # Panics
///
/// Panics if the dissection yields no windows (impossible for a valid
/// [`FixedDissection`]).
pub fn gradient_analysis(map: &DensityMap) -> GradientAnalysis {
    let dis = map.dissection();
    let grid = dis.tiles();
    let r = dis.r();
    let max_x = grid.nx().saturating_sub(r - 1);
    let max_y = grid.ny().saturating_sub(r - 1);
    let density = |ix: usize, iy: usize| -> f64 {
        map.window_density(crate::Window {
            anchor: (ix, iy),
            r,
        })
    };
    let mut max_g = 0.0f64;
    let mut sum = 0.0f64;
    let mut pairs = 0usize;
    for iy in 0..max_y {
        for ix in 0..max_x {
            let d = density(ix, iy);
            if ix + 1 < max_x {
                let g = (density(ix + 1, iy) - d).abs();
                max_g = max_g.max(g);
                sum += g;
                pairs += 1;
            }
            if iy + 1 < max_y {
                let g = (density(ix, iy + 1) - d).abs();
                max_g = max_g.max(g);
                sum += g;
                pairs += 1;
            }
        }
    }
    GradientAnalysis {
        max_gradient: max_g,
        mean_gradient: if pairs == 0 { 0.0 } else { sum / pairs as f64 },
        pairs,
    }
}

/// One scale of a multi-scale analysis.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a multi-scale analysis is pure; dropping it discards the statistics"]
pub struct ScaleAnalysis {
    /// Window size in dbu.
    pub window: Coord,
    /// Standard min/max/variation analysis at this scale.
    pub analysis: crate::DensityAnalysis,
    /// Gradient at this scale.
    pub gradient: GradientAnalysis,
}

/// Analyzes `design` (plus optional extra per-tile fill areas applied via
/// the returned maps' own API) at several window sizes with a common `r`.
///
/// # Errors
///
/// Propagates [`DissectionError`] for any window size that does not fit
/// the die or is not divisible by `r`.
pub fn multi_scale_analysis(
    design: &Design,
    layer: LayerId,
    windows: &[Coord],
    r: usize,
) -> Result<Vec<ScaleAnalysis>, DissectionError> {
    windows
        .iter()
        .map(|&window| {
            let dis = FixedDissection::new(design.die, window, r)?;
            let map = DensityMap::compute(design, layer, &dis);
            Ok(ScaleAnalysis {
                window,
                analysis: map.analyze(),
                gradient: gradient_analysis(&map),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilfill_geom::{Dir, Point, Rect};
    use pilfill_layout::DesignBuilder;

    fn lumpy_design() -> Design {
        // All metal in one corner: large gradient.
        DesignBuilder::new("lumpy", Rect::new(0, 0, 32_000, 32_000))
            .layer("m3", Dir::Horizontal)
            .net("n", Point::new(300, 1_000))
            .segment(
                "m3",
                Point::new(300, 1_000),
                Point::new(8_000, 1_000),
                2_000,
            )
            .sink(Point::new(8_000, 1_000))
            .build()
            .expect("valid")
    }

    #[test]
    fn gradient_positive_for_lumpy_layout() {
        let d = lumpy_design();
        let dis = FixedDissection::new(d.die, 8_000, 2).expect("dissection");
        let map = DensityMap::compute(&d, LayerId(0), &dis);
        let g = gradient_analysis(&map);
        assert!(g.max_gradient > 0.0);
        assert!(g.mean_gradient > 0.0);
        assert!(g.max_gradient >= g.mean_gradient);
        assert!(g.pairs > 0);
    }

    #[test]
    fn gradient_zero_for_empty_layout() {
        let mut d = lumpy_design();
        d.nets.clear();
        let dis = FixedDissection::new(d.die, 8_000, 2).expect("dissection");
        let map = DensityMap::compute(&d, LayerId(0), &dis);
        let g = gradient_analysis(&map);
        assert_eq!(g.max_gradient, 0.0);
        assert_eq!(g.mean_gradient, 0.0);
    }

    #[test]
    fn uniform_fill_reduces_gradient() {
        let d = lumpy_design();
        let dis = FixedDissection::new(d.die, 8_000, 2).expect("dissection");
        let map = DensityMap::compute(&d, LayerId(0), &dis);
        let before = gradient_analysis(&map);
        // Fill every tile up to a constant density.
        let mut filled = map.clone();
        for cell in dis.tiles().indices() {
            let area = dis.tiles().cell_rect(cell).area();
            let target = (area as f64 * 0.3) as i64;
            let missing = (target - map.tile_area(cell)).max(0);
            filled.add_tile_area(cell, missing);
        }
        let after = gradient_analysis(&filled);
        assert!(
            after.max_gradient < before.max_gradient,
            "{} !< {}",
            after.max_gradient,
            before.max_gradient
        );
    }

    #[test]
    fn multi_scale_reports_each_window() {
        let d = lumpy_design();
        let scales =
            multi_scale_analysis(&d, LayerId(0), &[8_000, 16_000, 32_000], 2).expect("scales");
        assert_eq!(scales.len(), 3);
        for s in &scales {
            assert!(s.analysis.max_window_density <= 1.0);
            assert!(s.analysis.variation >= 0.0);
        }
        // Coarser windows average out: variation shrinks with window size.
        assert!(scales[2].analysis.variation <= scales[0].analysis.variation);
    }

    #[test]
    fn multi_scale_rejects_bad_window() {
        let d = lumpy_design();
        assert!(multi_scale_analysis(&d, LayerId(0), &[7_001], 2).is_err());
    }
}
