//! # pilfill-density
//!
//! Layout density analysis and fill budgeting in the fixed *r*-dissection
//! framework (paper Section 1, Figure 1), plus the density-only fill
//! budgeting of the "normal fill" baseline (Chen–Kahng–Robins–Zelikovsky,
//! TCAD 2002 — the paper's reference \[3\]).
//!
//! - [`FixedDissection`]: the tile grid induced by window size `w` and
//!   dissection parameter `r` (tile size `w/r`), and the `r^2` overlapping
//!   window phases.
//! - [`DensityMap`]: per-tile feature area, window density queries and the
//!   min/max/variation analysis foundries care about.
//! - [`budget`]: how many fill features each tile must receive. Two
//!   implementations of the reference-\[3\] budgeting step: an exact
//!   Min-Var LP (small grids) and the scalable Monte-Carlo/greedy
//!   iteration. Both respect per-tile slack capacity and a window density
//!   upper bound, and both are *density-only* — deciding where inside each
//!   tile the features go is the PIL-Fill core's job.
//!
//! # Examples
//!
//! ```
//! use pilfill_density::FixedDissection;
//! use pilfill_geom::Rect;
//!
//! // 4 windows across, r = 2 -> 8x8 tiles, 7x7 overlapping windows.
//! let d = FixedDissection::new(Rect::new(0, 0, 64_000, 64_000), 16_000, 2)?;
//! assert_eq!(d.tiles().nx(), 8);
//! assert_eq!(d.windows().count(), 49);
//! # Ok::<(), pilfill_density::DissectionError>(())
//! ```

pub mod budget;
mod dissection;
mod map;
pub mod smoothness;

pub use budget::{lp_budget, montecarlo_budget, BudgetError, FillBudget};
pub use dissection::{DissectionError, FixedDissection, Window};
pub use map::{DensityAnalysis, DensityMap, PREFIX_CHUNK};
pub use smoothness::{gradient_analysis, multi_scale_analysis, GradientAnalysis, ScaleAnalysis};
