use crate::{FixedDissection, Window};
use pilfill_geom::CellIndex;
use pilfill_layout::{Design, LayerId};

/// Tiles per chunk in the vertical pass of the summed-area fold
/// ([`DensityMap::rebuild_prefix_chunked`]).
///
/// The fold adds each prefix row to the next as two flat `i64` slices;
/// splitting the rows into fixed-width chunks gives the compiler
/// independent, bounds-check-free inner loops it can unroll and
/// vectorize. 64 tiles = 512 bytes = 8 cache lines per chunk, and any
/// chunk width yields bit-identical tables (integer addition is
/// associative), which the lane-sweep test below checks for 1/2/4/8.
///
/// This is the density-crate counterpart of the scanline layout
/// constants in `pilfill_core::scan::layout`; it lives here because the
/// core crate depends on this one, not the other way around.
pub const PREFIX_CHUNK: usize = 64;

/// Per-tile feature area on one layer, with window-density queries.
///
/// # Examples
///
/// ```
/// use pilfill_density::{DensityMap, FixedDissection};
/// use pilfill_layout::synth::{SynthConfig, synthesize};
/// use pilfill_layout::LayerId;
///
/// let design = synthesize(&SynthConfig::small_test(1));
/// let dis = FixedDissection::new(design.die, 8_000, 2)?;
/// let map = DensityMap::compute(&design, LayerId(0), &dis);
/// let analysis = map.analyze();
/// assert!(analysis.max_window_density <= 1.0);
/// assert!(analysis.min_window_density <= analysis.max_window_density);
/// # Ok::<(), pilfill_density::DissectionError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMap {
    dissection: FixedDissection,
    /// Feature area per tile, row-major `[iy * nx + ix]`.
    area: Vec<i64>,
    /// Summed-area table over `area`, `(nx + 1) x (ny + 1)` row-major:
    /// `prefix[iy * (nx + 1) + ix]` is the total area of tiles in
    /// `[0, ix) x [0, iy)`. Rebuilt eagerly on every mutation (O(tiles))
    /// so window queries are O(1) and the map stays `Sync`.
    prefix: Vec<i64>,
}

/// Result of a window-density analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "a density analysis is pure; dropping it discards the statistics"]
pub struct DensityAnalysis {
    /// Smallest window density (features / window area).
    pub min_window_density: f64,
    /// Largest window density.
    pub max_window_density: f64,
    /// `max - min`: the variation objective of density-driven fill.
    pub variation: f64,
    /// Mean window density.
    pub mean_window_density: f64,
}

impl DensityMap {
    /// Computes per-tile drawn metal area of `layer` under `dissection`,
    /// counting both wire segments and obstructions (macros are metal for
    /// CMP purposes).
    pub fn compute(design: &Design, layer: LayerId, dissection: &FixedDissection) -> Self {
        let grid = dissection.tiles();
        let mut area = vec![0i64; grid.len()];
        Self::accumulate_layer(&grid, &mut area, design, layer);
        Self::from_areas(*dissection, area)
    }

    /// Recomputes the map in place for (possibly changed) geometry on
    /// `layer`, reusing the existing `area` and `prefix` allocations.
    ///
    /// Equivalent to replacing `self` with
    /// [`DensityMap::compute`]`(design, layer, self.dissection())` but
    /// allocation-free once the buffers are warm.
    pub fn recompute(&mut self, design: &Design, layer: LayerId) {
        let grid = self.dissection.tiles();
        self.area.clear();
        self.area.resize(grid.len(), 0);
        Self::accumulate_layer(&grid, &mut self.area, design, layer);
        self.rebuild_prefix();
    }

    /// Adds the clipped per-tile area of every segment and obstruction on
    /// `layer` into `area` (row-major over `grid`).
    fn accumulate_layer(
        grid: &pilfill_geom::Grid,
        area: &mut [i64],
        design: &Design,
        layer: LayerId,
    ) {
        let mut add_rect = |rect: pilfill_geom::Rect| {
            for cell in grid.cells_overlapping(&rect) {
                let clipped = grid.cell_rect(cell).intersection(&rect);
                area[Self::index_of(grid, cell)] += clipped.area();
            }
        };
        for (_, _, seg) in design.segments_on_layer(layer) {
            add_rect(seg.rect());
        }
        for o in design.obstructions_on_layer(layer) {
            add_rect(o.rect);
        }
    }

    /// An all-zero map over `dissection` (useful for accumulating fill).
    pub fn zeros(dissection: &FixedDissection) -> Self {
        let n = dissection.tiles().len();
        Self::from_areas(*dissection, vec![0; n])
    }

    /// Builds a map from per-tile areas, computing the summed-area table.
    fn from_areas(dissection: FixedDissection, area: Vec<i64>) -> Self {
        let mut map = Self {
            dissection,
            area,
            prefix: Vec::new(),
        };
        map.rebuild_prefix();
        map
    }

    /// Recomputes the summed-area table from `area` in O(tiles).
    fn rebuild_prefix(&mut self) {
        self.rebuild_prefix_chunked(PREFIX_CHUNK);
    }

    /// The chunked two-pass summed-area build behind
    /// [`rebuild_prefix`](Self::rebuild_prefix), with an explicit chunk
    /// width so tests can sweep lane counts. Both passes are branchless
    /// row-major walks over flat slices:
    ///
    /// 1. each prefix row gets the horizontal running sums of its area
    ///    row (rows are independent);
    /// 2. each prefix row is added element-wise to the next, in
    ///    `chunk`-wide strips (`chunks_exact` lets the compiler drop
    ///    bounds checks and vectorize the strip).
    ///
    /// The result is bit-identical for every `chunk >= 1` and matches
    /// [`rebuild_prefix_reference`](Self::rebuild_prefix_reference).
    #[doc(hidden)]
    pub fn rebuild_prefix_chunked(&mut self, chunk: usize) {
        assert!(chunk > 0, "chunk width must be positive");
        let grid = self.dissection.tiles();
        let (nx, ny) = (grid.nx(), grid.ny());
        let stride = nx + 1;
        self.prefix.clear();
        self.prefix.resize(stride * (ny + 1), 0);
        // Pass 1: horizontal running sums. Prefix row iy + 1 column
        // ix + 1 gets area[iy][..=ix] summed; column 0 stays zero.
        let rows = &mut self.prefix[stride..];
        for (iy, row) in rows.chunks_exact_mut(stride).enumerate() {
            let src = &self.area[iy * nx..(iy + 1) * nx];
            let mut run = 0i64;
            for (dst, &a) in row[1..].iter_mut().zip(src) {
                run += a;
                *dst = run;
            }
        }
        // Pass 2: vertical fold, row k += row k - 1 element-wise. The
        // rows are sequentially dependent but each row-pair add is a
        // flat slice walk in `chunk`-wide strips.
        for k in 1..ny {
            let (head, tail) = rows.split_at_mut(k * stride);
            let prev = &head[(k - 1) * stride..];
            let cur = &mut tail[..stride];
            let mut prev_chunks = prev.chunks_exact(chunk);
            let mut cur_chunks = cur.chunks_exact_mut(chunk);
            for (c, p) in (&mut cur_chunks).zip(&mut prev_chunks) {
                for (dst, &src) in c.iter_mut().zip(p) {
                    *dst += src;
                }
            }
            for (dst, &src) in cur_chunks
                .into_remainder()
                .iter_mut()
                .zip(prev_chunks.remainder())
            {
                *dst += src;
            }
        }
    }

    /// The original scalar summed-area build, retained as the oracle for
    /// the chunked fold's bit-identity tests.
    #[doc(hidden)]
    pub fn rebuild_prefix_reference(&mut self) {
        let grid = self.dissection.tiles();
        let (nx, ny) = (grid.nx(), grid.ny());
        self.prefix.clear();
        self.prefix.resize((nx + 1) * (ny + 1), 0);
        for iy in 0..ny {
            let mut row_sum = 0i64;
            for ix in 0..nx {
                row_sum += self.area[iy * nx + ix];
                self.prefix[(iy + 1) * (nx + 1) + ix + 1] =
                    self.prefix[iy * (nx + 1) + ix + 1] + row_sum;
            }
        }
    }

    /// Sum of feature area over the half-open tile block
    /// `[x0, x1) x [y0, y1)` in O(1) via the summed-area table.
    fn block_area(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64 {
        let stride = self.dissection.tiles().nx() + 1;
        self.prefix[y1 * stride + x1] + self.prefix[y0 * stride + x0]
            - self.prefix[y0 * stride + x1]
            - self.prefix[y1 * stride + x0]
    }

    fn index_of(grid: &pilfill_geom::Grid, (ix, iy): CellIndex) -> usize {
        iy * grid.nx() + ix
    }

    /// The dissection this map was computed under.
    pub const fn dissection(&self) -> &FixedDissection {
        &self.dissection
    }

    /// Feature area of one tile.
    pub fn tile_area(&self, cell: CellIndex) -> i64 {
        self.area[Self::index_of(&self.dissection.tiles(), cell)]
    }

    /// Adds feature area to one tile (e.g. inserted fill).
    ///
    /// # Panics
    ///
    /// Panics if the tile index is out of range.
    pub fn add_tile_area(&mut self, cell: CellIndex, delta: i64) {
        let idx = Self::index_of(&self.dissection.tiles(), cell);
        self.area[idx] += delta;
        self.rebuild_prefix();
    }

    /// Adds feature area to many tiles with a single summed-area rebuild
    /// (the batched form of [`DensityMap::add_tile_area`]).
    ///
    /// # Panics
    ///
    /// Panics if any tile index is out of range.
    pub fn add_tile_areas(&mut self, deltas: impl IntoIterator<Item = (CellIndex, i64)>) {
        let grid = self.dissection.tiles();
        for (cell, delta) in deltas {
            self.area[Self::index_of(&grid, cell)] += delta;
        }
        self.rebuild_prefix();
    }

    /// Sum of feature area over a window, O(1) via the summed-area table.
    pub fn window_area(&self, w: Window) -> i64 {
        let grid = self.dissection.tiles();
        let (ax, ay) = w.anchor;
        let x1 = (ax + w.r).min(grid.nx());
        let y1 = (ay + w.r).min(grid.ny());
        self.block_area(ax.min(x1), ay.min(y1), x1, y1)
    }

    /// Density (feature area / geometric area) of a window.
    pub fn window_density(&self, w: Window) -> f64 {
        let rect = self.dissection.window_rect(w);
        self.window_area(w) as f64 / rect.area() as f64
    }

    /// Total feature area across all tiles.
    pub fn total_area(&self) -> i64 {
        self.area.iter().sum()
    }

    /// Returns a new map whose tile areas are the element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if the two maps use different dissections.
    #[must_use]
    pub fn sum_with(&self, other: &DensityMap) -> DensityMap {
        assert_eq!(
            self.dissection, other.dissection,
            "cannot combine maps over different dissections"
        );
        DensityMap::from_areas(
            self.dissection,
            self.area
                .iter()
                .zip(&other.area)
                .map(|(a, b)| a + b)
                .collect(),
        )
    }

    /// Min/max/variation analysis over all windows.
    ///
    /// # Panics
    ///
    /// Panics if the dissection yields no windows (cannot happen for a
    /// successfully constructed [`FixedDissection`]).
    pub fn analyze(&self) -> DensityAnalysis {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut count = 0usize;
        for w in self.dissection.windows() {
            let d = self.window_density(w);
            min = min.min(d);
            max = max.max(d);
            sum += d;
            count += 1;
        }
        assert!(count > 0, "dissection has no windows");
        DensityAnalysis {
            min_window_density: min,
            max_window_density: max,
            variation: max - min,
            mean_window_density: sum / count as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilfill_geom::{Dir, Point, Rect};
    use pilfill_layout::DesignBuilder;

    fn dissection(die: Rect) -> FixedDissection {
        FixedDissection::new(die, 8_000, 2).expect("valid dissection")
    }

    fn one_wire_design() -> Design {
        DesignBuilder::new("d", Rect::new(0, 0, 32_000, 32_000))
            .layer("m3", Dir::Horizontal)
            .net("n", Point::new(0, 2_000))
            .segment("m3", Point::new(0, 2_000), Point::new(8_000, 2_000), 400)
            .sink(Point::new(8_000, 2_000))
            .build()
            .expect("valid design")
    }

    #[test]
    fn tile_areas_sum_to_layer_area() {
        let d = one_wire_design();
        let dis = dissection(d.die);
        let map = DensityMap::compute(&d, LayerId(0), &dis);
        assert_eq!(map.total_area(), d.metal_area_on_layer(LayerId(0)));
    }

    #[test]
    fn wire_spanning_two_tiles_splits_area() {
        let d = one_wire_design();
        // Tile size 4000; the wire [0, 8000) x [1800, 2200) covers tiles
        // (0,0) and (1,0) with 4000*400 each.
        let dis = dissection(d.die);
        let map = DensityMap::compute(&d, LayerId(0), &dis);
        assert_eq!(map.tile_area((0, 0)), 4_000 * 400);
        assert_eq!(map.tile_area((1, 0)), 4_000 * 400);
        assert_eq!(map.tile_area((2, 0)), 0);
    }

    #[test]
    fn window_density_reflects_contents() {
        let d = one_wire_design();
        let dis = dissection(d.die);
        let map = DensityMap::compute(&d, LayerId(0), &dis);
        let w = Window {
            anchor: (0, 0),
            r: 2,
        };
        let expected = (2.0 * 4_000.0 * 400.0) / (8_000.0f64 * 8_000.0);
        assert!((map.window_density(w) - expected).abs() < 1e-12);
    }

    #[test]
    fn add_fill_area_shifts_analysis() {
        let d = one_wire_design();
        let dis = dissection(d.die);
        let mut map = DensityMap::compute(&d, LayerId(0), &dis);
        let before = map.analyze();
        // Fill an empty corner tile heavily.
        map.add_tile_area((6, 6), 3_000_000);
        let after = map.analyze();
        assert!(after.min_window_density >= before.min_window_density);
        assert!(after.max_window_density >= before.max_window_density);
    }

    #[test]
    fn zeros_map_analysis_is_flat() {
        let d = one_wire_design();
        let dis = dissection(d.die);
        let map = DensityMap::zeros(&dis);
        let a = map.analyze();
        assert_eq!(a.min_window_density, 0.0);
        assert_eq!(a.max_window_density, 0.0);
        assert_eq!(a.variation, 0.0);
    }

    #[test]
    fn sum_with_adds_elementwise() {
        let d = one_wire_design();
        let dis = dissection(d.die);
        let map = DensityMap::compute(&d, LayerId(0), &dis);
        let total = map.sum_with(&map);
        assert_eq!(total.total_area(), 2 * map.total_area());
        assert_eq!(total.tile_area((0, 0)), 2 * map.tile_area((0, 0)));
    }

    /// Reference implementation: naive per-tile summation over the window.
    fn naive_window_area(map: &DensityMap, w: Window) -> i64 {
        w.tiles().map(|c| map.tile_area(c)).sum()
    }

    #[test]
    fn prefix_sum_matches_naive_on_randomized_maps() {
        use pilfill_prng::{Rng, SeedableRng};
        let mut rng = pilfill_prng::rngs::StdRng::seed_from_u64(0xD1CE);
        // Mix of square and ragged grids, several r values.
        let cases = [
            (Rect::new(0, 0, 32_000, 32_000), 8_000i64, 2usize),
            (Rect::new(0, 0, 64_000, 64_000), 16_000, 4),
            (Rect::new(0, 0, 10_500, 9_100), 4_000, 2),
            (Rect::new(-5_000, -3_000, 27_000, 29_000), 8_000, 4),
            (Rect::new(0, 0, 24_000, 24_000), 24_000, 3),
        ];
        for (die, window, r) in cases {
            let dis = FixedDissection::new(die, window, r).expect("valid dissection");
            let mut map = DensityMap::zeros(&dis);
            let grid = dis.tiles();
            map.add_tile_areas(grid.indices().map(|c| (c, rng.gen_range(0..1_000_000i64))));
            for w in dis.windows() {
                assert_eq!(
                    map.window_area(w),
                    naive_window_area(&map, w),
                    "window {w:?} under {die:?} w={window} r={r}"
                );
            }
            // Mutate a few tiles one at a time and re-verify: the table
            // must track incremental updates, not just bulk builds.
            for _ in 0..8 {
                let ix = rng.gen_range(0..grid.nx());
                let iy = rng.gen_range(0..grid.ny());
                map.add_tile_area((ix, iy), rng.gen_range(-500_000..500_000i64));
            }
            for w in dis.windows() {
                assert_eq!(map.window_area(w), naive_window_area(&map, w));
            }
        }
    }

    /// The chunked two-pass fold must be bit-identical to the retained
    /// scalar reference for every lane width, on square, ragged, and
    /// single-row/column grids.
    #[test]
    fn chunked_prefix_is_bit_identical_across_lane_widths() {
        use pilfill_prng::{Rng, SeedableRng};
        let mut rng = pilfill_prng::rngs::StdRng::seed_from_u64(0xFA_CADE);
        let cases = [
            (Rect::new(0, 0, 32_000, 32_000), 8_000i64, 2usize),
            (Rect::new(0, 0, 10_500, 9_100), 4_000, 2),
            (Rect::new(-5_000, -3_000, 27_000, 29_000), 8_000, 4),
            (Rect::new(0, 0, 24_000, 4_000), 4_000, 2),
            (Rect::new(0, 0, 4_000, 24_000), 4_000, 2),
        ];
        for (die, window, r) in cases {
            let dis = FixedDissection::new(die, window, r).expect("valid dissection");
            let mut map = DensityMap::zeros(&dis);
            let grid = dis.tiles();
            map.add_tile_areas(
                grid.indices()
                    .map(|c| (c, rng.gen_range(-1_000_000..1_000_000i64))),
            );
            map.rebuild_prefix_reference();
            let want = map.prefix.clone();
            for lanes in [1usize, 2, 4, 8] {
                map.prefix.clear();
                map.rebuild_prefix_chunked(lanes);
                assert_eq!(
                    map.prefix, want,
                    "lane width {lanes} diverged under {die:?} w={window} r={r}"
                );
            }
            // And the production width, in case it ever departs from the
            // swept set.
            map.rebuild_prefix_chunked(PREFIX_CHUNK);
            assert_eq!(map.prefix, want);
        }
    }

    /// `recompute` must reproduce `compute` exactly while reusing buffers.
    #[test]
    fn recompute_matches_fresh_compute() {
        let d = one_wire_design();
        let dis = dissection(d.die);
        let fresh = DensityMap::compute(&d, LayerId(0), &dis);
        let mut reused = DensityMap::zeros(&dis);
        reused.add_tile_area((3, 3), 123_456); // dirty the buffers first
        reused.recompute(&d, LayerId(0));
        assert_eq!(reused, fresh);
    }

    #[test]
    #[should_panic(expected = "different dissections")]
    fn sum_with_mismatched_dissections_panics() {
        let d = one_wire_design();
        let a = DensityMap::zeros(&dissection(d.die));
        let b = DensityMap::zeros(&FixedDissection::new(d.die, 16_000, 2).expect("valid"));
        let _ = a.sum_with(&b);
    }
}
