use crate::{FixedDissection, Window};
use pilfill_geom::CellIndex;
use pilfill_layout::{Design, LayerId};

/// Per-tile feature area on one layer, with window-density queries.
///
/// # Examples
///
/// ```
/// use pilfill_density::{DensityMap, FixedDissection};
/// use pilfill_layout::synth::{SynthConfig, synthesize};
/// use pilfill_layout::LayerId;
///
/// let design = synthesize(&SynthConfig::small_test(1));
/// let dis = FixedDissection::new(design.die, 8_000, 2)?;
/// let map = DensityMap::compute(&design, LayerId(0), &dis);
/// let analysis = map.analyze();
/// assert!(analysis.max_window_density <= 1.0);
/// assert!(analysis.min_window_density <= analysis.max_window_density);
/// # Ok::<(), pilfill_density::DissectionError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMap {
    dissection: FixedDissection,
    /// Feature area per tile, row-major `[iy * nx + ix]`.
    area: Vec<i64>,
    /// Summed-area table over `area`, `(nx + 1) x (ny + 1)` row-major:
    /// `prefix[iy * (nx + 1) + ix]` is the total area of tiles in
    /// `[0, ix) x [0, iy)`. Rebuilt eagerly on every mutation (O(tiles))
    /// so window queries are O(1) and the map stays `Sync`.
    prefix: Vec<i64>,
}

/// Result of a window-density analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "a density analysis is pure; dropping it discards the statistics"]
pub struct DensityAnalysis {
    /// Smallest window density (features / window area).
    pub min_window_density: f64,
    /// Largest window density.
    pub max_window_density: f64,
    /// `max - min`: the variation objective of density-driven fill.
    pub variation: f64,
    /// Mean window density.
    pub mean_window_density: f64,
}

impl DensityMap {
    /// Computes per-tile drawn metal area of `layer` under `dissection`,
    /// counting both wire segments and obstructions (macros are metal for
    /// CMP purposes).
    pub fn compute(design: &Design, layer: LayerId, dissection: &FixedDissection) -> Self {
        let grid = dissection.tiles();
        let mut area = vec![0i64; grid.len()];
        let mut add_rect = |rect: pilfill_geom::Rect| {
            for cell in grid.cells_overlapping(&rect) {
                let clipped = grid.cell_rect(cell).intersection(&rect);
                area[Self::index_of(&grid, cell)] += clipped.area();
            }
        };
        for (_, _, seg) in design.segments_on_layer(layer) {
            add_rect(seg.rect());
        }
        for o in design.obstructions_on_layer(layer) {
            add_rect(o.rect);
        }
        Self::from_areas(*dissection, area)
    }

    /// An all-zero map over `dissection` (useful for accumulating fill).
    pub fn zeros(dissection: &FixedDissection) -> Self {
        let n = dissection.tiles().len();
        Self::from_areas(*dissection, vec![0; n])
    }

    /// Builds a map from per-tile areas, computing the summed-area table.
    fn from_areas(dissection: FixedDissection, area: Vec<i64>) -> Self {
        let mut map = Self {
            dissection,
            area,
            prefix: Vec::new(),
        };
        map.rebuild_prefix();
        map
    }

    /// Recomputes the summed-area table from `area` in O(tiles).
    fn rebuild_prefix(&mut self) {
        let grid = self.dissection.tiles();
        let (nx, ny) = (grid.nx(), grid.ny());
        self.prefix.clear();
        self.prefix.resize((nx + 1) * (ny + 1), 0);
        for iy in 0..ny {
            let mut row_sum = 0i64;
            for ix in 0..nx {
                row_sum += self.area[iy * nx + ix];
                self.prefix[(iy + 1) * (nx + 1) + ix + 1] =
                    self.prefix[iy * (nx + 1) + ix + 1] + row_sum;
            }
        }
    }

    /// Sum of feature area over the half-open tile block
    /// `[x0, x1) x [y0, y1)` in O(1) via the summed-area table.
    fn block_area(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> i64 {
        let stride = self.dissection.tiles().nx() + 1;
        self.prefix[y1 * stride + x1] + self.prefix[y0 * stride + x0]
            - self.prefix[y0 * stride + x1]
            - self.prefix[y1 * stride + x0]
    }

    fn index_of(grid: &pilfill_geom::Grid, (ix, iy): CellIndex) -> usize {
        iy * grid.nx() + ix
    }

    /// The dissection this map was computed under.
    pub const fn dissection(&self) -> &FixedDissection {
        &self.dissection
    }

    /// Feature area of one tile.
    pub fn tile_area(&self, cell: CellIndex) -> i64 {
        self.area[Self::index_of(&self.dissection.tiles(), cell)]
    }

    /// Adds feature area to one tile (e.g. inserted fill).
    ///
    /// # Panics
    ///
    /// Panics if the tile index is out of range.
    pub fn add_tile_area(&mut self, cell: CellIndex, delta: i64) {
        let idx = Self::index_of(&self.dissection.tiles(), cell);
        self.area[idx] += delta;
        self.rebuild_prefix();
    }

    /// Adds feature area to many tiles with a single summed-area rebuild
    /// (the batched form of [`DensityMap::add_tile_area`]).
    ///
    /// # Panics
    ///
    /// Panics if any tile index is out of range.
    pub fn add_tile_areas(&mut self, deltas: impl IntoIterator<Item = (CellIndex, i64)>) {
        let grid = self.dissection.tiles();
        for (cell, delta) in deltas {
            self.area[Self::index_of(&grid, cell)] += delta;
        }
        self.rebuild_prefix();
    }

    /// Sum of feature area over a window, O(1) via the summed-area table.
    pub fn window_area(&self, w: Window) -> i64 {
        let grid = self.dissection.tiles();
        let (ax, ay) = w.anchor;
        let x1 = (ax + w.r).min(grid.nx());
        let y1 = (ay + w.r).min(grid.ny());
        self.block_area(ax.min(x1), ay.min(y1), x1, y1)
    }

    /// Density (feature area / geometric area) of a window.
    pub fn window_density(&self, w: Window) -> f64 {
        let rect = self.dissection.window_rect(w);
        self.window_area(w) as f64 / rect.area() as f64
    }

    /// Total feature area across all tiles.
    pub fn total_area(&self) -> i64 {
        self.area.iter().sum()
    }

    /// Returns a new map whose tile areas are the element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if the two maps use different dissections.
    #[must_use]
    pub fn sum_with(&self, other: &DensityMap) -> DensityMap {
        assert_eq!(
            self.dissection, other.dissection,
            "cannot combine maps over different dissections"
        );
        DensityMap::from_areas(
            self.dissection,
            self.area
                .iter()
                .zip(&other.area)
                .map(|(a, b)| a + b)
                .collect(),
        )
    }

    /// Min/max/variation analysis over all windows.
    ///
    /// # Panics
    ///
    /// Panics if the dissection yields no windows (cannot happen for a
    /// successfully constructed [`FixedDissection`]).
    pub fn analyze(&self) -> DensityAnalysis {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut count = 0usize;
        for w in self.dissection.windows() {
            let d = self.window_density(w);
            min = min.min(d);
            max = max.max(d);
            sum += d;
            count += 1;
        }
        assert!(count > 0, "dissection has no windows");
        DensityAnalysis {
            min_window_density: min,
            max_window_density: max,
            variation: max - min,
            mean_window_density: sum / count as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilfill_geom::{Dir, Point, Rect};
    use pilfill_layout::DesignBuilder;

    fn dissection(die: Rect) -> FixedDissection {
        FixedDissection::new(die, 8_000, 2).expect("valid dissection")
    }

    fn one_wire_design() -> Design {
        DesignBuilder::new("d", Rect::new(0, 0, 32_000, 32_000))
            .layer("m3", Dir::Horizontal)
            .net("n", Point::new(0, 2_000))
            .segment("m3", Point::new(0, 2_000), Point::new(8_000, 2_000), 400)
            .sink(Point::new(8_000, 2_000))
            .build()
            .expect("valid design")
    }

    #[test]
    fn tile_areas_sum_to_layer_area() {
        let d = one_wire_design();
        let dis = dissection(d.die);
        let map = DensityMap::compute(&d, LayerId(0), &dis);
        assert_eq!(map.total_area(), d.metal_area_on_layer(LayerId(0)));
    }

    #[test]
    fn wire_spanning_two_tiles_splits_area() {
        let d = one_wire_design();
        // Tile size 4000; the wire [0, 8000) x [1800, 2200) covers tiles
        // (0,0) and (1,0) with 4000*400 each.
        let dis = dissection(d.die);
        let map = DensityMap::compute(&d, LayerId(0), &dis);
        assert_eq!(map.tile_area((0, 0)), 4_000 * 400);
        assert_eq!(map.tile_area((1, 0)), 4_000 * 400);
        assert_eq!(map.tile_area((2, 0)), 0);
    }

    #[test]
    fn window_density_reflects_contents() {
        let d = one_wire_design();
        let dis = dissection(d.die);
        let map = DensityMap::compute(&d, LayerId(0), &dis);
        let w = Window {
            anchor: (0, 0),
            r: 2,
        };
        let expected = (2.0 * 4_000.0 * 400.0) / (8_000.0f64 * 8_000.0);
        assert!((map.window_density(w) - expected).abs() < 1e-12);
    }

    #[test]
    fn add_fill_area_shifts_analysis() {
        let d = one_wire_design();
        let dis = dissection(d.die);
        let mut map = DensityMap::compute(&d, LayerId(0), &dis);
        let before = map.analyze();
        // Fill an empty corner tile heavily.
        map.add_tile_area((6, 6), 3_000_000);
        let after = map.analyze();
        assert!(after.min_window_density >= before.min_window_density);
        assert!(after.max_window_density >= before.max_window_density);
    }

    #[test]
    fn zeros_map_analysis_is_flat() {
        let d = one_wire_design();
        let dis = dissection(d.die);
        let map = DensityMap::zeros(&dis);
        let a = map.analyze();
        assert_eq!(a.min_window_density, 0.0);
        assert_eq!(a.max_window_density, 0.0);
        assert_eq!(a.variation, 0.0);
    }

    #[test]
    fn sum_with_adds_elementwise() {
        let d = one_wire_design();
        let dis = dissection(d.die);
        let map = DensityMap::compute(&d, LayerId(0), &dis);
        let total = map.sum_with(&map);
        assert_eq!(total.total_area(), 2 * map.total_area());
        assert_eq!(total.tile_area((0, 0)), 2 * map.tile_area((0, 0)));
    }

    /// Reference implementation: naive per-tile summation over the window.
    fn naive_window_area(map: &DensityMap, w: Window) -> i64 {
        w.tiles().map(|c| map.tile_area(c)).sum()
    }

    #[test]
    fn prefix_sum_matches_naive_on_randomized_maps() {
        use pilfill_prng::{Rng, SeedableRng};
        let mut rng = pilfill_prng::rngs::StdRng::seed_from_u64(0xD1CE);
        // Mix of square and ragged grids, several r values.
        let cases = [
            (Rect::new(0, 0, 32_000, 32_000), 8_000i64, 2usize),
            (Rect::new(0, 0, 64_000, 64_000), 16_000, 4),
            (Rect::new(0, 0, 10_500, 9_100), 4_000, 2),
            (Rect::new(-5_000, -3_000, 27_000, 29_000), 8_000, 4),
            (Rect::new(0, 0, 24_000, 24_000), 24_000, 3),
        ];
        for (die, window, r) in cases {
            let dis = FixedDissection::new(die, window, r).expect("valid dissection");
            let mut map = DensityMap::zeros(&dis);
            let grid = dis.tiles();
            map.add_tile_areas(grid.indices().map(|c| (c, rng.gen_range(0..1_000_000i64))));
            for w in dis.windows() {
                assert_eq!(
                    map.window_area(w),
                    naive_window_area(&map, w),
                    "window {w:?} under {die:?} w={window} r={r}"
                );
            }
            // Mutate a few tiles one at a time and re-verify: the table
            // must track incremental updates, not just bulk builds.
            for _ in 0..8 {
                let ix = rng.gen_range(0..grid.nx());
                let iy = rng.gen_range(0..grid.ny());
                map.add_tile_area((ix, iy), rng.gen_range(-500_000..500_000i64));
            }
            for w in dis.windows() {
                assert_eq!(map.window_area(w), naive_window_area(&map, w));
            }
        }
    }

    #[test]
    #[should_panic(expected = "different dissections")]
    fn sum_with_mismatched_dissections_panics() {
        let d = one_wire_design();
        let a = DensityMap::zeros(&dissection(d.die));
        let b = DensityMap::zeros(&FixedDissection::new(d.die, 16_000, 2).expect("valid"));
        let _ = a.sum_with(&b);
    }
}
