use pilfill_geom::{CellIndex, Coord, Grid, Rect};

/// Error constructing a [`FixedDissection`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DissectionError {
    /// Window size must be positive and divisible by `r`.
    InvalidWindow {
        /// Requested window size.
        window: Coord,
        /// Requested dissection parameter.
        r: usize,
    },
    /// The die is smaller than a single window.
    DieTooSmall,
}

impl std::fmt::Display for DissectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DissectionError::InvalidWindow { window, r } => write!(
                f,
                "window size {window} must be positive and divisible by r = {r}"
            ),
            DissectionError::DieTooSmall => f.write_str("die smaller than one window"),
        }
    }
}

impl std::error::Error for DissectionError {}

/// One `w x w` density window: an `r x r` block of tiles anchored at tile
/// `(ix, iy)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Anchor tile (lower-left of the block).
    pub anchor: CellIndex,
    /// Dissection parameter: the window spans `r x r` tiles.
    pub r: usize,
}

impl Window {
    /// Iterates the tile indices covered by the window.
    pub fn tiles(&self) -> impl Iterator<Item = CellIndex> + '_ {
        let (ax, ay) = self.anchor;
        let r = self.r;
        (ay..ay + r).flat_map(move |iy| (ax..ax + r).map(move |ix| (ix, iy)))
    }
}

/// The fixed `r`-dissection of a die: square tiles of side `w/r` covering
/// the die, with every `r x r` tile block forming a density window
/// (Figure 1 of the paper: the `r^2` overlapping dissection phases are
/// exactly the set of all anchored blocks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedDissection {
    tiles: Grid,
    window: Coord,
    r: usize,
}

impl FixedDissection {
    /// Creates the dissection of `die` with window size `window` (in dbu)
    /// and dissection parameter `r`.
    ///
    /// # Errors
    ///
    /// Returns [`DissectionError::InvalidWindow`] unless `window > 0`,
    /// `r > 0` and `r` divides `window`; [`DissectionError::DieTooSmall`]
    /// if the die cannot hold one full window.
    pub fn new(die: Rect, window: Coord, r: usize) -> Result<Self, DissectionError> {
        // `r` is untrusted config: reject (rather than assert) values that
        // do not fit a coordinate.
        let r_coord = pilfill_geom::units::try_coord(r).unwrap_or(-1);
        if window <= 0 || r_coord <= 0 || window % r_coord != 0 {
            return Err(DissectionError::InvalidWindow { window, r });
        }
        if die.width() < window || die.height() < window {
            return Err(DissectionError::DieTooSmall);
        }
        let tile = window / r_coord;
        Ok(Self {
            tiles: Grid::square(die, tile),
            window,
            r,
        })
    }

    /// The tile grid.
    pub const fn tiles(&self) -> Grid {
        self.tiles
    }

    /// Tile side length (`w / r`).
    pub fn tile_size(&self) -> Coord {
        self.tiles.pitch_x()
    }

    /// Window side length.
    pub const fn window_size(&self) -> Coord {
        self.window
    }

    /// The dissection parameter `r`.
    pub const fn r(&self) -> usize {
        self.r
    }

    /// Number of tiles (total).
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Iterates every window (all `r^2` phases; one window per anchor tile
    /// that has `r x r` full tiles above and to the right).
    pub fn windows(&self) -> impl Iterator<Item = Window> + '_ {
        let nx = self.tiles.nx();
        let ny = self.tiles.ny();
        let r = self.r;
        let max_x = nx.saturating_sub(r - 1);
        let max_y = ny.saturating_sub(r - 1);
        (0..max_y).flat_map(move |iy| {
            (0..max_x).map(move |ix| Window {
                anchor: (ix, iy),
                r,
            })
        })
    }

    /// The geometric rectangle of a window.
    pub fn window_rect(&self, w: Window) -> Rect {
        let lo = self.tiles.cell_rect(w.anchor);
        Rect::new(
            lo.left,
            lo.bottom,
            (lo.left + self.window).min(self.tiles.bounds().right),
            (lo.bottom + self.window).min(self.tiles.bounds().top),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dissection() -> FixedDissection {
        FixedDissection::new(Rect::new(0, 0, 64_000, 64_000), 16_000, 4).expect("valid")
    }

    #[test]
    fn tile_and_window_counts() {
        let d = dissection();
        assert_eq!(d.tile_size(), 4_000);
        assert_eq!(d.tiles().nx(), 16);
        assert_eq!(d.num_tiles(), 256);
        // Windows: (16 - 3)^2.
        assert_eq!(d.windows().count(), 13 * 13);
        assert_eq!(d.r(), 4);
        assert_eq!(d.window_size(), 16_000);
    }

    #[test]
    fn r1_windows_are_tiles() {
        let d = FixedDissection::new(Rect::new(0, 0, 10_000, 10_000), 2_000, 1).expect("r=1");
        assert_eq!(d.windows().count(), d.num_tiles());
    }

    #[test]
    fn window_tiles_enumerate_block() {
        let w = Window {
            anchor: (2, 3),
            r: 2,
        };
        let tiles: Vec<_> = w.tiles().collect();
        assert_eq!(tiles, vec![(2, 3), (3, 3), (2, 4), (3, 4)]);
    }

    #[test]
    fn window_rect_spans_r_tiles() {
        let d = dissection();
        let w = Window {
            anchor: (1, 1),
            r: 4,
        };
        assert_eq!(d.window_rect(w), Rect::new(4_000, 4_000, 20_000, 20_000));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let die = Rect::new(0, 0, 10_000, 10_000);
        assert!(FixedDissection::new(die, 0, 2).is_err());
        assert!(FixedDissection::new(die, 1_000, 0).is_err());
        assert!(FixedDissection::new(die, 1_001, 2).is_err()); // not divisible
        assert!(FixedDissection::new(die, 20_000, 2).is_err()); // die too small
    }

    #[test]
    fn partial_die_still_tiles_fully() {
        // Die not an exact multiple of the tile size: tiles still cover it.
        let d = FixedDissection::new(Rect::new(0, 0, 10_500, 9_100), 4_000, 2).expect("valid");
        let total: i64 = d
            .tiles()
            .indices()
            .map(|c| d.tiles().cell_rect(c).area())
            .sum();
        assert_eq!(total, 10_500 * 9_100);
    }
}
