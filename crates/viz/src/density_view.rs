//! Density heat-map rendering: one colored cell per tile, with a legend —
//! the visual form of the fixed r-dissection analysis.

use crate::svg::{lerp_color, SvgDoc};
use pilfill_density::DensityMap;

/// An SVG heat map of a [`DensityMap`].
///
/// # Examples
///
/// ```
/// use pilfill_density::{DensityMap, FixedDissection};
/// use pilfill_layout::synth::{SynthConfig, synthesize};
/// use pilfill_layout::LayerId;
/// use pilfill_viz::DensityView;
///
/// let design = synthesize(&SynthConfig::small_test(1));
/// let dis = FixedDissection::new(design.die, 8_000, 2)?;
/// let map = DensityMap::compute(&design, LayerId(0), &dis);
/// let svg = DensityView::new(&map).render(640.0);
/// assert!(svg.starts_with("<svg"));
/// # Ok::<(), pilfill_density::DissectionError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DensityView<'a> {
    map: &'a DensityMap,
    /// Density mapped to the hot end of the scale (defaults to the max
    /// tile density).
    max_density: Option<f64>,
}

impl<'a> DensityView<'a> {
    /// A view with an auto-scaled color range.
    pub fn new(map: &'a DensityMap) -> Self {
        Self {
            map,
            max_density: None,
        }
    }

    /// Pins the hot end of the color scale (useful for before/after pairs
    /// sharing one scale).
    #[must_use]
    pub fn with_max_density(mut self, max: f64) -> Self {
        self.max_density = Some(max);
        self
    }

    /// Renders the heat map at the given pixel width (a legend strip is
    /// appended below the map).
    pub fn render(&self, width_px: f64) -> String {
        let grid = self.map.dissection().tiles();
        let bounds = grid.bounds();
        let scale = width_px / bounds.width() as f64;
        let map_height = bounds.height() as f64 * scale;
        let legend_height = 28.0;
        let mut doc = SvgDoc::new(width_px, map_height + legend_height);

        let tile_density = |ix: usize, iy: usize| -> f64 {
            let rect = grid.cell_rect((ix, iy));
            self.map.tile_area((ix, iy)) as f64 / rect.area() as f64
        };
        let max = self.max_density.unwrap_or_else(|| {
            grid.indices()
                .map(|(ix, iy)| tile_density(ix, iy))
                .fold(0.0f64, f64::max)
                .max(1e-9)
        });

        const COLD: (u8, u8, u8) = (18, 26, 48);
        const HOT: (u8, u8, u8) = (240, 110, 60);

        doc.begin_group("tiles");
        for (ix, iy) in grid.indices() {
            let rect = grid.cell_rect((ix, iy));
            let x = (rect.left - bounds.left) as f64 * scale;
            let h = rect.height() as f64 * scale;
            let y = (bounds.top - rect.top) as f64 * scale;
            let w = rect.width() as f64 * scale;
            let t = (tile_density(ix, iy) / max).clamp(0.0, 1.0);
            let color = lerp_color(COLD, HOT, t);
            // Inline fill: per-cell colors don't fit a class-based style.
            doc.rect_colored(x, y, w, h, &color);
        }
        doc.end_group();

        // Legend: a gradient strip with min/max labels.
        doc.begin_group("legend");
        let steps = 32;
        let strip_w = width_px * 0.6;
        let x0 = (width_px - strip_w) / 2.0;
        for i in 0..steps {
            let t = i as f64 / (steps - 1) as f64;
            doc.rect_colored(
                x0 + t * strip_w * (1.0 - 1.0 / steps as f64),
                map_height + 8.0,
                strip_w / steps as f64 + 1.0,
                10.0,
                &lerp_color(COLD, HOT, t),
            );
        }
        doc.text(x0 - 6.0, map_height + 18.0, "legend-label", "0");
        doc.text(
            x0 + strip_w + 6.0,
            map_height + 18.0,
            "legend-label",
            &format!("{max:.2}"),
        );
        doc.end_group();

        doc.finish(".legend-label{font:10px monospace;fill:#c8c8c8} .tiles rect{stroke:none}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilfill_density::FixedDissection;
    use pilfill_layout::synth::{synthesize, SynthConfig};
    use pilfill_layout::LayerId;

    fn map() -> DensityMap {
        let d = synthesize(&SynthConfig::small_test(3));
        let dis = FixedDissection::new(d.die, 8_000, 2).expect("dissection");
        DensityMap::compute(&d, LayerId(0), &dis)
    }

    #[test]
    fn one_cell_per_tile_plus_legend() {
        let m = map();
        let svg = DensityView::new(&m).render(640.0);
        let tiles = m.dissection().tiles().len();
        let rects = svg.matches("<rect").count();
        assert!(rects >= tiles, "expected >= {tiles} rects, got {rects}");
        assert!(svg.contains("legend"));
    }

    #[test]
    fn pinned_scale_changes_colors() {
        let m = map();
        let auto = DensityView::new(&m).render(640.0);
        let pinned = DensityView::new(&m).with_max_density(1.0).render(640.0);
        assert_ne!(auto, pinned);
    }

    #[test]
    fn deterministic() {
        let m = map();
        assert_eq!(
            DensityView::new(&m).render(320.0),
            DensityView::new(&m).render(320.0)
        );
    }
}
