//! A minimal SVG document writer: just enough for rectilinear EDA artwork
//! (rectangles, lines, text, groups), producing deterministic,
//! well-formed output.

use std::fmt::Write as _;

/// An SVG document under construction.
///
/// Coordinates are in user units; the constructor sets the `viewBox`. The
/// y axis is *not* flipped automatically — callers mapping die coordinates
/// (y up) to SVG (y down) should use [`SvgDoc::flip_y`].
#[derive(Debug, Clone)]
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
    indent: usize,
}

impl SvgDoc {
    /// Creates a document with the given pixel size and matching viewBox.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not positive and finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0 && width.is_finite() && height.is_finite(),
            "svg dimensions must be positive (got {width} x {height})"
        );
        Self {
            width,
            height,
            body: String::new(),
            indent: 1,
        }
    }

    /// Document width in user units.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height in user units.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Maps a y coordinate from y-up (die) space into y-down SVG space.
    pub fn flip_y(&self, y: f64) -> f64 {
        self.height - y
    }

    fn pad(&mut self) {
        for _ in 0..self.indent {
            self.body.push_str("  ");
        }
    }

    /// Adds a filled rectangle. `class` becomes the `class` attribute
    /// (style lives in the document's `<style>` block).
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, class: &str) {
        self.pad();
        let _ = writeln!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" class="{class}"/>"#
        );
    }

    /// Adds a rectangle with an explicit inline fill color (for per-cell
    /// colors, e.g. heat maps, where classes don't fit).
    pub fn rect_colored(&mut self, x: f64, y: f64, w: f64, h: f64, color: &str) {
        self.pad();
        let _ = writeln!(
            self.body,
            r##"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{color}"/>"##
        );
    }

    /// Adds a line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, class: &str) {
        self.pad();
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" class="{class}"/>"#
        );
    }

    /// Adds a text label anchored at `(x, y)`.
    pub fn text(&mut self, x: f64, y: f64, class: &str, content: &str) {
        self.pad();
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" class="{class}">{}</text>"#,
            escape(content)
        );
    }

    /// Opens a group with a class; close with [`SvgDoc::end_group`].
    pub fn begin_group(&mut self, class: &str) {
        self.pad();
        let _ = writeln!(self.body, r#"<g class="{class}">"#);
        self.indent += 1;
    }

    /// Closes the innermost group.
    ///
    /// # Panics
    ///
    /// Panics if no group is open.
    pub fn end_group(&mut self) {
        assert!(self.indent > 1, "no group to close");
        self.indent -= 1;
        self.pad();
        self.body.push_str("</g>\n");
    }

    /// Finishes the document, embedding `style` as CSS.
    ///
    /// # Panics
    ///
    /// Panics if a group is still open.
    pub fn finish(self, style: &str) -> String {
        assert_eq!(self.indent, 1, "unclosed group at finish");
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w:.0}\" height=\"{h:.0}\" \
             viewBox=\"0 0 {w:.2} {h:.2}\">\n  <style>{style}</style>\n{body}</svg>\n",
            w = self.width,
            h = self.height,
            body = self.body
        )
    }
}

/// Escapes text content for XML.
pub fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Linear color interpolation between two `(r, g, b)` triples, `t` in
/// `[0, 1]`, formatted as `#rrggbb`.
pub fn lerp_color(from: (u8, u8, u8), to: (u8, u8, u8), t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    // `t` is clamped to [0, 1], so the blend stays within [0, 255]; a
    // float-to-u8 `as` cast also saturates by definition. pilfill: allow(as-cast)
    let c = |a: u8, b: u8| -> u8 { (a as f64 + (b as f64 - a as f64) * t).round() as u8 };
    format!(
        "#{:02x}{:02x}{:02x}",
        c(from.0, to.0),
        c(from.1, to.1),
        c(from.2, to.2)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure_is_well_formed() {
        let mut doc = SvgDoc::new(100.0, 50.0);
        doc.begin_group("wires");
        doc.rect(1.0, 2.0, 3.0, 4.0, "m3");
        doc.line(0.0, 0.0, 10.0, 10.0, "edge");
        doc.end_group();
        doc.text(5.0, 5.0, "label", "hello <world> & friends");
        let svg = doc.finish(".m3{fill:red}");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains(r#"viewBox="0 0 100.00 50.00""#));
        assert!(svg.contains("&lt;world&gt; &amp; friends"));
        // Balanced groups.
        assert_eq!(svg.matches("<g ").count(), svg.matches("</g>").count());
    }

    #[test]
    #[should_panic(expected = "unclosed group")]
    fn unclosed_group_panics() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.begin_group("g");
        let _ = doc.finish("");
    }

    #[test]
    #[should_panic(expected = "no group to close")]
    fn extra_end_group_panics() {
        let mut doc = SvgDoc::new(10.0, 10.0);
        doc.end_group();
    }

    #[test]
    fn flip_y_inverts_axis() {
        let doc = SvgDoc::new(10.0, 100.0);
        assert_eq!(doc.flip_y(0.0), 100.0);
        assert_eq!(doc.flip_y(100.0), 0.0);
    }

    #[test]
    fn lerp_color_endpoints_and_midpoint() {
        assert_eq!(lerp_color((0, 0, 0), (255, 255, 255), 0.0), "#000000");
        assert_eq!(lerp_color((0, 0, 0), (255, 255, 255), 1.0), "#ffffff");
        assert_eq!(lerp_color((0, 0, 0), (255, 255, 255), 0.5), "#808080");
        // Clamped.
        assert_eq!(lerp_color((0, 0, 0), (255, 0, 0), 2.0), "#ff0000");
    }
}
