//! Layout rendering: die, wires per layer, fill features, optional
//! net highlighting.

use crate::svg::SvgDoc;
use pilfill_core::FillFeature;
use pilfill_geom::Rect;
use pilfill_layout::{Design, NetId};

/// Colors and sizing for layout rendering.
#[derive(Debug, Clone)]
pub struct Theme {
    /// Target image width in pixels (height follows the die aspect).
    pub width_px: f64,
    /// Fill colors per layer index (cycled when there are more layers).
    pub layer_colors: Vec<&'static str>,
    /// Color of fill features.
    pub fill_color: &'static str,
    /// Color of highlighted nets.
    pub highlight_color: &'static str,
    /// Die background.
    pub background: &'static str,
}

impl Default for Theme {
    fn default() -> Self {
        Self {
            width_px: 800.0,
            layer_colors: vec!["#3d6fb8", "#b85c3d", "#3db87a", "#8a3db8"],
            fill_color: "#c9b458",
            highlight_color: "#d62828",
            background: "#0e1116",
        }
    }
}

/// A configurable SVG view of a [`Design`].
///
/// # Examples
///
/// ```
/// use pilfill_layout::synth::{SynthConfig, synthesize};
/// use pilfill_viz::{LayoutView, Theme};
///
/// let design = synthesize(&SynthConfig::small_test(2));
/// let svg = LayoutView::new(&design)
///     .with_layer_visible(1, false)
///     .render(&Theme::default());
/// assert!(svg.contains("class=\"layer0\""));
/// assert!(!svg.contains("class=\"layer1\""));
/// ```
#[derive(Debug, Clone)]
pub struct LayoutView<'a> {
    design: &'a Design,
    fill: &'a [FillFeature],
    highlight: Vec<NetId>,
    layer_visible: Vec<bool>,
}

impl<'a> LayoutView<'a> {
    /// A view of the bare design (no fill, all layers visible).
    pub fn new(design: &'a Design) -> Self {
        Self {
            design,
            fill: &[],
            highlight: Vec::new(),
            layer_visible: vec![true; design.layers.len()],
        }
    }

    /// Adds fill features to the view.
    #[must_use]
    pub fn with_fill(mut self, fill: &'a [FillFeature]) -> Self {
        self.fill = fill;
        self
    }

    /// Highlights one net.
    #[must_use]
    pub fn with_highlight(mut self, net: NetId) -> Self {
        self.highlight.push(net);
        self
    }

    /// Shows or hides one layer.
    #[must_use]
    pub fn with_layer_visible(mut self, layer: usize, visible: bool) -> Self {
        if layer < self.layer_visible.len() {
            self.layer_visible[layer] = visible;
        }
        self
    }

    /// Renders to an SVG string.
    pub fn render(&self, theme: &Theme) -> String {
        let die = self.design.die;
        let scale = theme.width_px / die.width() as f64;
        let height_px = die.height() as f64 * scale;
        let mut doc = SvgDoc::new(theme.width_px, height_px);

        let to_px = |r: &Rect, doc: &SvgDoc| -> (f64, f64, f64, f64) {
            let x = (r.left - die.left) as f64 * scale;
            let w = r.width() as f64 * scale;
            let h = r.height() as f64 * scale;
            let y = doc.flip_y((r.top - die.bottom) as f64 * scale);
            (x, y, w, h)
        };

        // Die background.
        doc.rect(0.0, 0.0, doc.width(), doc.height(), "die");

        for (li, _layer) in self.design.layers.iter().enumerate() {
            if !self.layer_visible[li] {
                continue;
            }
            doc.begin_group(&format!("layer{li}"));
            for (net_id, _, seg) in self
                .design
                .nets
                .iter()
                .enumerate()
                .flat_map(|(ni, net)| {
                    net.segments
                        .iter()
                        .enumerate()
                        .map(move |(si, s)| (NetId(ni), si, s))
                })
                .filter(|(_, _, s)| s.layer.0 == li)
            {
                let class = if self.highlight.contains(&net_id) {
                    "hot".to_string()
                } else {
                    format!("layer{li}")
                };
                let (x, y, w, h) = to_px(&seg.rect(), &doc);
                doc.rect(x, y, w, h, &class);
            }
            doc.end_group();
        }

        if !self.design.obstructions.is_empty() {
            doc.begin_group("obstructions");
            for o in &self.design.obstructions {
                let (x, y, w, h) = to_px(&o.rect, &doc);
                doc.rect(x, y, w, h, "obs");
            }
            doc.end_group();
        }

        if !self.fill.is_empty() {
            doc.begin_group("fill");
            let size = self.design.rules.feature_size;
            for f in self.fill {
                let (x, y, w, h) = to_px(&f.rect(size), &doc);
                doc.rect(x, y, w, h, "fill");
            }
            doc.end_group();
        }

        let mut style = format!(
            ".die{{fill:{}}} .fill{{fill:{};fill-opacity:0.85}} .hot{{fill:{}}} \
             .obs{{fill:#555b66;fill-opacity:0.8}}",
            theme.background, theme.fill_color, theme.highlight_color
        );
        for li in 0..self.design.layers.len() {
            let color = theme.layer_colors[li % theme.layer_colors.len()];
            style.push_str(&format!(" .layer{li}{{fill:{color};fill-opacity:0.9}}"));
        }
        doc.finish(&style)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilfill_layout::synth::{synthesize, SynthConfig};

    fn design() -> Design {
        synthesize(&SynthConfig::small_test(6))
    }

    #[test]
    fn renders_all_segments() {
        let d = design();
        let svg = LayoutView::new(&d).render(&Theme::default());
        let total_segments: usize = d.nets.iter().map(|n| n.segments.len()).sum();
        // One rect per segment plus the die background.
        assert_eq!(svg.matches("<rect").count(), total_segments + 1);
    }

    #[test]
    fn fill_group_appears_only_with_fill() {
        let d = design();
        let plain = LayoutView::new(&d).render(&Theme::default());
        assert!(!plain.contains(r#"class="fill""#));
        let features = vec![
            FillFeature { x: 1_000, y: 1_000 },
            FillFeature { x: 2_000, y: 2_000 },
        ];
        let filled = LayoutView::new(&d)
            .with_fill(&features)
            .render(&Theme::default());
        assert_eq!(filled.matches(r#"class="fill""#).count(), 2 + 1); // 2 rects + group
    }

    #[test]
    fn highlight_recolors_net() {
        let d = design();
        let svg = LayoutView::new(&d)
            .with_highlight(NetId(0))
            .render(&Theme::default());
        let hot = svg.matches(r#"class="hot""#).count();
        assert_eq!(hot, d.nets[0].segments.len());
    }

    #[test]
    fn aspect_ratio_follows_die() {
        let d = design(); // square die
        let svg = LayoutView::new(&d).render(&Theme::default());
        assert!(svg.contains(r#"width="800" height="800""#));
    }

    #[test]
    fn deterministic_output() {
        let d = design();
        let a = LayoutView::new(&d).render(&Theme::default());
        let b = LayoutView::new(&d).render(&Theme::default());
        assert_eq!(a, b);
    }
}
