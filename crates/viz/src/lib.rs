//! # pilfill-viz
//!
//! SVG rendering for PIL-Fill: routed layouts with their fill placements,
//! and window-density heat maps — the visual counterparts of the paper's
//! layout figures, generated from live data.
//!
//! The crate is dependency-free beyond the workspace: [`svg`] is a tiny
//! string-building SVG writer sufficient for rectilinear EDA artwork.
//!
//! # Examples
//!
//! ```
//! use pilfill_layout::synth::{SynthConfig, synthesize};
//! use pilfill_viz::{LayoutView, Theme};
//!
//! let design = synthesize(&SynthConfig::small_test(1));
//! let svg = LayoutView::new(&design).render(&Theme::default());
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.ends_with("</svg>\n"));
//! ```

mod density_view;
mod layout_view;
pub mod svg;

pub use density_view::DensityView;
pub use layout_view::{LayoutView, Theme};
