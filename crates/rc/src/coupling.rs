//! Lateral coupling capacitance of parallel active lines and its
//! perturbation by floating square fill (paper Section 3, Eqs. (3)-(7)).

use crate::{EPS0, METERS_PER_DBU};
use pilfill_geom::{units, Coord};
use pilfill_layout::{FillRules, Tech};

/// Parallel-plate coupling model between coplanar parallel lines.
///
/// The paper folds the conductor geometry into an "overlap area" `a`; for
/// coplanar lines of thickness `t` coupled over unit length, `a = t`. All
/// capacitances are in farads; distances are accepted in dbu and converted
/// internally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CouplingModel {
    /// Effective permittivity `eps0 * eps_r` in F/m.
    eps: f64,
    /// Metal thickness in meters (the paper's `a` per unit length).
    thickness_m: f64,
}

impl CouplingModel {
    /// Builds the model from technology parameters.
    pub fn new(tech: &Tech) -> Self {
        Self {
            eps: EPS0 * tech.eps_r,
            thickness_m: tech.thickness as f64 * METERS_PER_DBU,
        }
    }

    /// Per-unit-length coupling capacitance `C_B = eps * a / d` (Eq. 3)
    /// between two lines `d` dbu apart, in F/m.
    ///
    /// # Panics
    ///
    /// Panics if `d` is not positive.
    pub fn cb_per_m(&self, d: Coord) -> f64 {
        assert!(d > 0, "line spacing must be positive (got {d})");
        self.eps * self.thickness_m / (d as f64 * METERS_PER_DBU)
    }

    /// Exact per-unit-length coupling with `m` fill features of width `w`
    /// stacked in a column between the lines: `f(m, d) = eps * a / (d - m w)`
    /// (Eq. 5), in F/m.
    ///
    /// # Panics
    ///
    /// Panics if `m * w >= d` (fill may not close the gap; capacity limits
    /// from [`max_fill_features`] prevent this).
    pub fn f_exact(&self, m: u32, d: Coord, w: Coord) -> f64 {
        let remaining = d - m as i64 * w;
        assert!(remaining > 0, "fill column over-full: m={m} w={w} d={d}");
        self.eps * self.thickness_m / (remaining as f64 * METERS_PER_DBU)
    }

    /// Incremental column capacitance of `m` features: the exact
    /// `(f(m, d) - C_B) * w` over the column footprint `w` (Eq. 7 rewritten
    /// as an increment), in farads.
    pub fn delta_cap_exact(&self, m: u32, d: Coord, w: Coord) -> f64 {
        if m == 0 {
            return 0.0;
        }
        let w_m = w as f64 * METERS_PER_DBU;
        (self.f_exact(m, d, w) - self.cb_per_m(d)) * w_m
    }

    /// Linearized incremental column capacitance (Eq. 6 over the footprint):
    /// `eps * a * w^2 * m / d^2`, in farads. Used by ILP-I only; it
    /// underestimates the exact value, increasingly so as `m w -> d`.
    pub fn delta_cap_linear(&self, m: u32, d: Coord, w: Coord) -> f64 {
        let d_m = d as f64 * METERS_PER_DBU;
        let w_m = w as f64 * METERS_PER_DBU;
        self.eps * self.thickness_m * w_m * w_m * m as f64 / (d_m * d_m)
    }
}

/// Maximum number of fill features that fit in a column between two lines
/// `gap` dbu apart under `rules` (feature size, inter-feature gap, buffer
/// distance): `m` features need `m*w + (m-1)*g + 2*buf <= gap`.
///
/// # Examples
///
/// ```
/// use pilfill_rc::max_fill_features;
/// use pilfill_layout::FillRules;
///
/// let rules = FillRules { feature_size: 400, gap: 200, buffer: 300 };
/// assert_eq!(max_fill_features(400 + 600, rules), 1);   // exactly one fits
/// assert_eq!(max_fill_features(999, rules), 0);
/// assert_eq!(max_fill_features(2 * 400 + 200 + 600, rules), 2);
/// ```
pub fn max_fill_features(gap: Coord, rules: FillRules) -> u32 {
    let usable = gap - 2 * rules.buffer + rules.gap;
    if usable <= 0 {
        return 0;
    }
    units::saturating_count((usable / rules.site_pitch()).max(0) as u64)
}

/// Pre-built lookup table of exact incremental column capacitances
/// `delta_cap_exact(m, d, w)` for `m = 0..=capacity` (the paper's `f(n, d)`
/// table backing ILP-II, Sec. 5.3).
#[derive(Debug, Clone, PartialEq)]
pub struct CapTable {
    entries: Vec<f64>,
}

impl CapTable {
    /// Builds the table for a column at line spacing `d` with feature width
    /// `w` and geometric `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity allows `m * w >= d` (the caller must derive
    /// capacity from [`max_fill_features`], which guarantees clearance).
    pub fn build(model: &CouplingModel, d: Coord, w: Coord, capacity: u32) -> Self {
        let entries = (0..=capacity)
            .map(|m| model.delta_cap_exact(m, d, w))
            .collect();
        Self { entries }
    }

    /// Incremental capacitance for `m` features.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds the capacity the table was built for.
    pub fn delta_cap(&self, m: u32) -> f64 {
        self.entries[units::index(i64::from(m))]
    }

    /// Column capacity the table covers.
    pub fn capacity(&self) -> u32 {
        units::saturating_count((self.entries.len() - 1) as u64)
    }

    /// Marginal cost of the `m`-th feature (difference of consecutive
    /// entries), used by greedy heuristics and convexity checks.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero or exceeds capacity.
    pub fn marginal(&self, m: u32) -> f64 {
        assert!(m >= 1, "marginal cost needs m >= 1");
        let i = units::index(i64::from(m));
        self.entries[i] - self.entries[i - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CouplingModel {
        CouplingModel::new(&Tech::default_180nm())
    }

    fn rules() -> FillRules {
        FillRules {
            feature_size: 400,
            gap: 200,
            buffer: 300,
        }
    }

    #[test]
    fn cb_scales_inversely_with_distance() {
        let m = model();
        let c1 = m.cb_per_m(1_000);
        let c2 = m.cb_per_m(2_000);
        assert!((c1 / c2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cb_has_plausible_magnitude() {
        // eps0*3.9 * 500nm / 1000nm ~ 1.7e-11 F/m — order of 10-20 aF/um.
        let c = model().cb_per_m(1_000);
        assert!(c > 1e-12 && c < 1e-9, "C_B = {c}");
    }

    #[test]
    fn f_exact_reduces_to_cb_at_zero_fill() {
        let m = model();
        assert_eq!(m.f_exact(0, 3_000, 400), m.cb_per_m(3_000));
        assert_eq!(m.delta_cap_exact(0, 3_000, 400), 0.0);
    }

    #[test]
    fn delta_cap_exact_is_increasing_and_convex_in_m() {
        let m = model();
        let d = 5_000;
        let w = 400;
        let caps: Vec<f64> = (0..=8).map(|k| m.delta_cap_exact(k, d, w)).collect();
        for pair in caps.windows(2) {
            assert!(pair[1] > pair[0], "not increasing: {pair:?}");
        }
        // Convexity: marginals increase.
        for triple in caps.windows(3) {
            let m1 = triple[1] - triple[0];
            let m2 = triple[2] - triple[1];
            assert!(m2 > m1, "not convex: {triple:?}");
        }
    }

    #[test]
    fn linear_model_underestimates_exact() {
        let m = model();
        for k in 1..=6u32 {
            let exact = m.delta_cap_exact(k, 4_000, 400);
            let linear = m.delta_cap_linear(k, 4_000, 400);
            assert!(linear < exact, "m={k}: linear {linear} >= exact {exact}");
            // But it is a decent approximation when m*w << d.
            if k == 1 {
                assert!((exact - linear) / exact < 0.15);
            }
        }
    }

    #[test]
    fn linear_model_is_linear() {
        let m = model();
        let base = m.delta_cap_linear(1, 4_000, 400);
        for k in 2..=5u32 {
            assert!((m.delta_cap_linear(k, 4_000, 400) - k as f64 * base).abs() < 1e-25);
        }
    }

    #[test]
    #[should_panic(expected = "over-full")]
    fn overfull_column_panics() {
        let _ = model().f_exact(10, 3_000, 400);
    }

    #[test]
    fn max_fill_features_respects_geometry() {
        let r = rules();
        // m features need m*400 + (m-1)*200 + 600 <= gap.
        assert_eq!(max_fill_features(0, r), 0);
        assert_eq!(max_fill_features(999, r), 0);
        assert_eq!(max_fill_features(1_000, r), 1);
        assert_eq!(max_fill_features(1_599, r), 1);
        assert_eq!(max_fill_features(1_600, r), 2);
        assert_eq!(max_fill_features(10_000, r), 16); // 16*400+15*200+600 = 10000
    }

    #[test]
    fn max_fill_never_closes_the_gap() {
        let r = rules();
        for gap in (700..20_000).step_by(137) {
            let m = max_fill_features(gap, r);
            if m > 0 {
                assert!(
                    (m as i64) * r.feature_size < gap,
                    "gap {gap}: {m} features of {} dbu close the gap",
                    r.feature_size
                );
            }
        }
    }

    #[test]
    fn cap_table_matches_model() {
        let m = model();
        let d = 6_000;
        let w = 400;
        let cap = max_fill_features(d, rules());
        let table = CapTable::build(&m, d, w, cap);
        assert_eq!(table.capacity(), cap);
        for k in 0..=cap {
            assert_eq!(table.delta_cap(k), m.delta_cap_exact(k, d, w));
        }
        for k in 1..=cap {
            assert!(table.marginal(k) > 0.0);
        }
    }
}
