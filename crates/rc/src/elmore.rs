//! Elmore delay on RC chains and trees (paper Section 3, Eqs. (8)-(9)).

use pilfill_layout::{LayoutError, Net, Tech};
use std::collections::HashMap;

/// A cascaded N-stage RC chain (Figure 3 of the paper).
///
/// Stage `i` has series resistance `r[i]` followed by shunt capacitance
/// `c[i]`. The Elmore delay at stage `k` is
/// `sum_{i<=k} r_cum(i) * ... ` — equivalently Eq. (8).
///
/// # Examples
///
/// ```
/// use pilfill_rc::RcChain;
///
/// let chain = RcChain::uniform(4, 10.0, 1e-15);
/// let d = chain.delays();
/// assert_eq!(d.len(), 4);
/// assert!(d[3] > d[0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RcChain {
    res: Vec<f64>,
    cap: Vec<f64>,
}

impl RcChain {
    /// Creates a chain from per-stage resistances and capacitances.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length.
    pub fn new(res: Vec<f64>, cap: Vec<f64>) -> Self {
        assert_eq!(res.len(), cap.len(), "stage count mismatch");
        Self { res, cap }
    }

    /// Creates `n` identical stages.
    pub fn uniform(n: usize, r: f64, c: f64) -> Self {
        Self {
            res: vec![r; n],
            cap: vec![c; n],
        }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.res.len()
    }

    /// `true` if the chain has no stages.
    pub fn is_empty(&self) -> bool {
        self.res.is_empty()
    }

    /// Elmore delay at every stage: Eq. (8),
    /// `tau_k = sum_{i=1..N} C_i * R(path shared with k)` which for a chain
    /// reduces to `sum_i C_i * sum_{j<=min(i,k)} R_j`.
    pub fn delays(&self) -> Vec<f64> {
        let n = self.len();
        // Cumulative resistance from source to stage i.
        let mut rcum = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &r in &self.res {
            acc += r;
            rcum.push(acc);
        }
        (0..n)
            .map(|k| (0..n).map(|i| self.cap[i] * rcum[i.min(k)]).sum())
            .collect()
    }

    /// Delay increment at stage `k` when the capacitance at stage `i`
    /// increases by `dc` (Eq. 9): `dc * R_cum(min(i, k))`.
    pub fn delay_increment(&self, k: usize, i: usize, dc: f64) -> f64 {
        let upto = i.min(k);
        let rcum: f64 = self.res[..=upto].iter().sum();
        dc * rcum
    }
}

/// An RC tree built from a routed [`Net`]: one node per segment endpoint,
/// wire resistance on edges, wire capacitance split half-half between edge
/// endpoints (pi model).
#[derive(Debug, Clone)]
pub struct RcTree {
    /// Node capacitances in farads.
    cap: Vec<f64>,
    /// Parent link: `(parent_node, resistance)` per node; root has none.
    parent: Vec<Option<(usize, f64)>>,
    /// Node index per sink of the originating net.
    sink_nodes: Vec<usize>,
}

impl RcTree {
    /// Builds the RC tree of `net` using wire resistance from `tech` and a
    /// nominal area capacitance per unit length (`cw_f_per_m`).
    ///
    /// # Errors
    ///
    /// Propagates topology errors from [`Net::topology`].
    pub fn from_net(net: &Net, tech: &Tech, cw_f_per_m: f64) -> Result<Self, LayoutError> {
        let topo = net.topology()?;
        let mut node_of: HashMap<pilfill_geom::Point, usize> = HashMap::new();
        let mut cap: Vec<f64> = Vec::new();
        let mut parent: Vec<Option<(usize, f64)>> = Vec::new();
        let mut node = |p: pilfill_geom::Point,
                        cap: &mut Vec<f64>,
                        parent: &mut Vec<Option<(usize, f64)>>|
         -> usize {
            *node_of.entry(p).or_insert_with(|| {
                cap.push(0.0);
                parent.push(None);
                cap.len() - 1
            })
        };
        let root = node(net.source, &mut cap, &mut parent);
        debug_assert_eq!(root, 0);
        // Visit in parent-first order so parents exist before children.
        for sid in &topo.order {
            let seg = &net.segments[sid.0];
            let len_m = seg.length() as f64 * crate::METERS_PER_DBU;
            let r = tech.res_per_dbu(seg.width) * seg.length() as f64;
            let c = cw_f_per_m * len_m;
            let a = node(seg.start, &mut cap, &mut parent);
            let b = node(seg.end, &mut cap, &mut parent);
            cap[a] += c / 2.0;
            cap[b] += c / 2.0;
            parent[b] = Some((a, r));
        }
        let sink_nodes = net
            .sinks
            .iter()
            .map(|s| node(*s, &mut cap, &mut parent))
            .collect();
        Ok(Self {
            cap,
            parent,
            sink_nodes,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.cap.len()
    }

    /// `true` if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.cap.is_empty()
    }

    /// Adds `dc` farads of capacitance at `node`.
    pub fn add_cap(&mut self, node: usize, dc: f64) {
        self.cap[node] += dc;
    }

    /// Upstream (entry) resistance from the root to `node`.
    pub fn upstream_res(&self, node: usize) -> f64 {
        let mut acc = 0.0;
        let mut cur = node;
        while let Some((p, r)) = self.parent[cur] {
            acc += r;
            cur = p;
        }
        acc
    }

    /// Elmore delay at every node: `tau_k = sum_i C_i * R_shared(i, k)`
    /// where `R_shared` is the resistance of the common source path.
    pub fn delays(&self) -> Vec<f64> {
        let n = self.len();
        // Path-to-root (list of nodes) per node; fine for the small trees
        // PIL-Fill nets produce.
        let paths: Vec<Vec<usize>> = (0..n)
            .map(|k| {
                let mut path = vec![k];
                let mut cur = k;
                while let Some((p, _)) = self.parent[cur] {
                    path.push(p);
                    cur = p;
                }
                path
            })
            .collect();
        let upstream: Vec<f64> = (0..n).map(|k| self.upstream_res(k)).collect();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|i| {
                        // Shared resistance = upstream of the deepest common
                        // ancestor of i and k.
                        let lca = paths[i]
                            .iter()
                            .find(|x| paths[k].contains(x))
                            .copied()
                            .unwrap_or(0);
                        self.cap[i] * upstream[lca]
                    })
                    .sum()
            })
            .collect()
    }

    /// Elmore delay at each sink of the originating net.
    pub fn sink_delays(&self) -> Vec<f64> {
        let all = self.delays();
        self.sink_nodes.iter().map(|&n| all[n]).collect()
    }

    /// The maximum sink delay (critical sink).
    pub fn max_sink_delay(&self) -> f64 {
        self.sink_delays().into_iter().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilfill_geom::Point;
    use pilfill_layout::{LayerId, Segment};

    #[test]
    fn chain_delay_closed_form_uniform() {
        // tau_N = sum_{i=1..N} c * i * r ... for uniform chain the delay at
        // the last node is r*c*N(N+1)/2.
        let n = 5;
        let r = 2.0;
        let c = 3.0;
        let chain = RcChain::uniform(n, r, c);
        let d = chain.delays();
        let expect = r * c * (n * (n + 1) / 2) as f64;
        assert!((d[n - 1] - expect).abs() < 1e-9, "{} vs {expect}", d[n - 1]);
    }

    #[test]
    fn chain_delays_are_monotone_downstream() {
        let chain = RcChain::new(vec![1.0, 2.0, 0.5], vec![1e-15, 2e-15, 5e-16]);
        let d = chain.delays();
        assert!(d[0] < d[1] && d[1] < d[2]);
    }

    #[test]
    fn chain_increment_matches_recompute() {
        let mut chain = RcChain::new(vec![1.0, 2.0, 0.5, 3.0], vec![1.0, 2.0, 0.5, 1.5]);
        let before = chain.delays();
        let dc = 0.7;
        let at = 2;
        let predicted: Vec<f64> = (0..chain.len())
            .map(|k| chain.delay_increment(k, at, dc))
            .collect();
        chain.cap[at] += dc;
        let after = chain.delays();
        for k in 0..chain.len() {
            assert!(
                (after[k] - before[k] - predicted[k]).abs() < 1e-9,
                "node {k}: {} vs {}",
                after[k] - before[k],
                predicted[k]
            );
        }
    }

    #[test]
    fn empty_and_uniform_constructors() {
        assert!(RcChain::new(vec![], vec![]).is_empty());
        assert_eq!(RcChain::uniform(3, 1.0, 1.0).len(), 3);
    }

    fn branching_net() -> Net {
        let seg = |x0: i64, y0: i64, x1: i64, y1: i64| Segment {
            layer: LayerId(0),
            start: Point::new(x0, y0),
            end: Point::new(x1, y1),
            width: 200,
        };
        Net {
            name: "t".into(),
            source: Point::new(0, 0),
            sinks: vec![Point::new(20_000, 0), Point::new(10_000, 8_000)],
            segments: vec![
                seg(0, 0, 10_000, 0),
                seg(10_000, 0, 20_000, 0),
                seg(10_000, 0, 10_000, 8_000),
            ],
        }
    }

    #[test]
    fn tree_upstream_resistance_accumulates() {
        let net = branching_net();
        let tech = Tech::default_180nm();
        let tree = RcTree::from_net(&net, &tech, 1e-10).expect("tree");
        // Node order: source=0, then ends of segments in order.
        let r_trunk = tech.res_per_dbu(200) * 10_000.0;
        assert!((tree.upstream_res(0) - 0.0).abs() < 1e-12);
        assert!((tree.upstream_res(1) - r_trunk).abs() < 1e-9);
        // Far sink: two trunk pieces.
        assert!((tree.upstream_res(2) - 2.0 * r_trunk).abs() < 1e-9);
    }

    #[test]
    fn tree_add_cap_increases_downstream_by_r_times_dc() {
        let net = branching_net();
        let tech = Tech::default_180nm();
        let mut tree = RcTree::from_net(&net, &tech, 1e-10).expect("tree");
        let before = tree.delays();
        // Add cap at the branch point (node 1).
        let dc = 5e-15;
        let r_up = tree.upstream_res(1);
        tree.add_cap(1, dc);
        let after = tree.delays();
        // Every node at or below node 1 gains exactly r_up * dc; the source
        // gains nothing... (source has zero upstream).
        for k in 1..tree.len() {
            let gain = after[k] - before[k];
            assert!(
                (gain - r_up * dc).abs() < 1e-18,
                "node {k}: gain {gain} vs {}",
                r_up * dc
            );
        }
        assert!((after[0] - before[0]).abs() < 1e-18);
    }

    #[test]
    fn tree_sink_delays_positive_and_bounded_by_max() {
        let net = branching_net();
        let tree = RcTree::from_net(&net, &Tech::default_180nm(), 1e-10).expect("tree");
        let sinks = tree.sink_delays();
        assert_eq!(sinks.len(), 2);
        for d in &sinks {
            assert!(*d > 0.0);
            assert!(*d <= tree.max_sink_delay());
        }
    }
}
