//! Timing slack and slack-to-capacitance budgeting — the bridge the
//! paper's Section 7 describes: "budgeted slacks (translated to budgeted
//! capacitances) ... typically available within synthesis, place and
//! route tools driven by incremental static timing engine".
//!
//! Given a required arrival time, each net's sinks have slack
//! `required - elmore_arrival`. Fill adds capacitance `dC` somewhere on
//! the net, raising sink `i`'s arrival by at most `dC * R(source->i)`
//! (Eq. 9 with the shared-path resistance bounded by the full path). The
//! largest `dC` that cannot violate any sink's slack is therefore
//! `min_i slack_i / R(source->i)` — a conservative per-net capacitance
//! budget computable without re-running timing.

use crate::{RcTree, METERS_PER_DBU};
use pilfill_layout::{Design, LayoutError, Net, Tech};

/// Per-sink timing view of one net.
#[derive(Debug, Clone, PartialEq)]
pub struct NetSlack {
    /// Elmore arrival time per sink, seconds.
    pub arrivals: Vec<f64>,
    /// Slack per sink (`required - arrival`), seconds.
    pub slacks: Vec<f64>,
    /// Upstream resistance from the source to each sink, ohms.
    pub sink_resistances: Vec<f64>,
}

impl NetSlack {
    /// The worst (smallest) slack, or `None` for sink-less nets.
    pub fn worst_slack(&self) -> Option<f64> {
        self.slacks.iter().copied().reduce(f64::min)
    }

    /// The conservative fill-capacitance budget: the largest added
    /// capacitance that cannot violate any sink's slack, clamped at zero
    /// for nets that already violate timing.
    pub fn cap_budget(&self) -> f64 {
        self.slacks
            .iter()
            .zip(&self.sink_resistances)
            .map(|(&s, &r)| {
                if r <= 0.0 {
                    f64::INFINITY
                } else {
                    (s / r).max(0.0)
                }
            })
            .fold(f64::INFINITY, f64::min)
    }
}

/// Computes the timing view of one net under the Elmore model.
///
/// `cw_f_per_m` is the nominal wire capacitance per meter used for the
/// baseline arrival times; `required` the required arrival time in
/// seconds.
///
/// # Errors
///
/// Propagates topology errors from [`Net::topology`].
pub fn net_slack(
    net: &Net,
    tech: &Tech,
    cw_f_per_m: f64,
    required: f64,
) -> Result<NetSlack, LayoutError> {
    let tree = RcTree::from_net(net, tech, cw_f_per_m)?;
    let arrivals = tree.sink_delays();
    let slacks: Vec<f64> = arrivals.iter().map(|a| required - a).collect();
    // Sink node resistances: recompute through the tree's upstream walk.
    let sink_resistances = sink_upstream_resistances(net, tech)?;
    Ok(NetSlack {
        arrivals,
        slacks,
        sink_resistances,
    })
}

fn sink_upstream_resistances(net: &Net, tech: &Tech) -> Result<Vec<f64>, LayoutError> {
    let topo = net.topology()?;
    let seg_res: Vec<f64> = net
        .segments
        .iter()
        .map(|s| tech.res_per_dbu(s.width) * s.length() as f64)
        .collect();
    Ok(net
        .sinks
        .iter()
        .map(|sink| {
            match net.segments.iter().position(|s| s.end == *sink) {
                Some(i) => {
                    let upstream: f64 = topo.upstream[i].iter().map(|sid| seg_res[sid.0]).sum();
                    upstream + seg_res[i]
                }
                // Sink at the source: no resistance in between.
                None => 0.0,
            }
        })
        .collect())
}

/// Computes every net's conservative fill-capacitance budget for a design.
///
/// Nets without sinks get an infinite budget (nothing to protect).
///
/// # Errors
///
/// Propagates the first topology error.
pub fn cap_budgets_from_slack(
    design: &Design,
    cw_f_per_m: f64,
    required: f64,
) -> Result<Vec<f64>, LayoutError> {
    design
        .nets
        .iter()
        .map(|net| {
            if net.sinks.is_empty() {
                return Ok(f64::INFINITY);
            }
            Ok(net_slack(net, &design.tech, cw_f_per_m, required)?.cap_budget())
        })
        .collect()
}

/// A reasonable default wire capacitance per meter for baseline arrivals
/// (area + fringe of a mid-level metal, ~0.15 fF/um).
pub fn default_wire_cap_per_m() -> f64 {
    0.15e-15 / (1_000.0 * METERS_PER_DBU)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilfill_geom::{Dir, Point, Rect};
    use pilfill_layout::DesignBuilder;

    fn design() -> Design {
        DesignBuilder::new("d", Rect::new(0, 0, 100_000, 100_000))
            .layer("m3", Dir::Horizontal)
            .net("short", Point::new(300, 10_000))
            .segment(
                "m3",
                Point::new(300, 10_000),
                Point::new(5_300, 10_000),
                280,
            )
            .sink(Point::new(5_300, 10_000))
            .net("long", Point::new(300, 20_000))
            .segment(
                "m3",
                Point::new(300, 20_000),
                Point::new(90_300, 20_000),
                280,
            )
            .sink(Point::new(90_300, 20_000))
            .build()
            .expect("valid")
    }

    #[test]
    fn arrivals_grow_with_length() {
        let d = design();
        let cw = default_wire_cap_per_m();
        let short = net_slack(&d.nets[0], &d.tech, cw, 1e-9).expect("slack");
        let long = net_slack(&d.nets[1], &d.tech, cw, 1e-9).expect("slack");
        assert!(long.arrivals[0] > short.arrivals[0]);
        assert!(long.worst_slack() < short.worst_slack());
    }

    #[test]
    fn cap_budget_shrinks_with_tighter_required() {
        let d = design();
        let cw = default_wire_cap_per_m();
        let loose = net_slack(&d.nets[1], &d.tech, cw, 1e-9).expect("slack");
        let tight = net_slack(&d.nets[1], &d.tech, cw, 1e-12).expect("slack");
        assert!(tight.cap_budget() <= loose.cap_budget());
    }

    #[test]
    fn violating_net_gets_zero_budget() {
        let d = design();
        let cw = default_wire_cap_per_m();
        // Required arrival earlier than any physical arrival.
        let s = net_slack(&d.nets[1], &d.tech, cw, 0.0).expect("slack");
        assert!(s.worst_slack().expect("has sinks") < 0.0);
        assert_eq!(s.cap_budget(), 0.0);
    }

    #[test]
    fn budget_math_matches_by_hand() {
        let d = design();
        let cw = default_wire_cap_per_m();
        let s = net_slack(&d.nets[0], &d.tech, cw, 1e-9).expect("slack");
        // Single sink: budget = slack / R(source->sink).
        let expected = s.slacks[0] / s.sink_resistances[0];
        assert!((s.cap_budget() - expected).abs() <= 1e-18 * expected.abs());
        // R(source->sink) = 5000 dbu of 280-wide wire.
        let r = d.tech.res_per_dbu(280) * 5_000.0;
        assert!((s.sink_resistances[0] - r).abs() < 1e-9);
    }

    #[test]
    fn design_wide_budgets_cover_all_nets() {
        let d = design();
        let budgets = cap_budgets_from_slack(&d, default_wire_cap_per_m(), 1e-9).expect("budgets");
        assert_eq!(budgets.len(), d.nets.len());
        assert!(budgets.iter().all(|b| *b >= 0.0));
        // Longer net has the smaller budget.
        assert!(budgets[1] < budgets[0]);
    }
}
