//! # pilfill-rc
//!
//! Interconnect capacitance and Elmore-delay engine for PIL-Fill,
//! implementing Section 3 of the paper.
//!
//! - [`CouplingModel`]: parallel-plate lateral coupling between active
//!   lines, the exact fill-perturbed capacitance `f(m, d)` of Eq. (5), its
//!   linearization of Eq. (6) (used by ILP-I), and the per-column
//!   incremental capacitance both ILP-II's lookup table ([`CapTable`]) and
//!   the method-independent evaluator consume.
//! - [`elmore`]: Elmore delay on RC trees ([`RcTree`]) with the additivity
//!   property of Eq. (9) — adding capacitance `dC` at a point with upstream
//!   resistance `R` increases every downstream sink's delay by `R * dC`.
//! - [`annotate`]: per-segment entry (upstream) resistance and
//!   downstream-sink weights `W_l` for every net of a design, the inputs of
//!   the MDFC formulations.
//!
//! # Examples
//!
//! ```
//! use pilfill_rc::CouplingModel;
//! use pilfill_layout::Tech;
//!
//! let model = CouplingModel::new(&Tech::default_180nm());
//! // More fill features between two lines -> more added capacitance.
//! let d = 4_000; // line spacing, dbu
//! let w = 400;   // fill feature size, dbu
//! assert!(model.delta_cap_exact(2, d, w) > model.delta_cap_exact(1, d, w));
//! // The linearization underestimates the exact increment.
//! assert!(model.delta_cap_linear(3, d, w) < model.delta_cap_exact(3, d, w));
//! ```

pub mod annotate;
mod coupling;
pub mod elmore;
pub mod slack;

pub use annotate::{
    annotate_design, annotate_net, annotate_net_into, annotate_net_reference, AnnotateScratch,
    NetTiming, SegmentTiming,
};
pub use coupling::{max_fill_features, CapTable, CouplingModel};
pub use elmore::{RcChain, RcTree};
pub use slack::{cap_budgets_from_slack, default_wire_cap_per_m, net_slack, NetSlack};

/// Vacuum permittivity in F/m.
pub const EPS0: f64 = 8.854e-12;

/// Meters per database unit (1 dbu = 1 nm).
pub const METERS_PER_DBU: f64 = 1e-9;
