//! Per-segment timing annotation: entry (upstream) resistance and
//! downstream-sink weights — the `R_l` and `W_l` inputs of the MDFC
//! formulations (paper Sections 4 and 5.2).
//!
//! The hot path ([`annotate_net_into`]) runs the tree traversal over a
//! caller-owned [`AnnotateScratch`] arena: a sorted flat children index
//! replaces the per-net hash map, upstream resistances are computed with
//! the one-step recurrence `up[k] = up[parent] + res[parent]` instead of
//! materialized source-path chains, and every buffer is reused across
//! nets. The output is bit-identical to the retained
//! [`Net::topology`]-based implementation ([`annotate_net_reference`]) —
//! the recurrence replays the reference's left-fold addition order
//! exactly, and the traversal mirrors [`Net::topology`] node for node so
//! the error cases agree too.

use pilfill_geom::Point;
use pilfill_layout::{Design, LayoutError, Net, Tech};

/// Sentinel parent index for segments hanging directly off the source.
const NO_PARENT: usize = usize::MAX;

/// Timing attributes of one routed segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentTiming {
    /// Per-unit-length resistance in ohm/dbu.
    pub res_per_dbu: f64,
    /// Total resistance from the net source to the segment's `start`
    /// (the "entry resistance" used in Eq. (13) once extended to the tile
    /// entry point).
    pub upstream_res: f64,
    /// Number of downstream sinks (the paper's weight `W_l`).
    pub weight: u32,
}

/// Timing annotation of a whole net.
#[derive(Debug, Clone, PartialEq)]
pub struct NetTiming {
    /// One entry per segment, in the net's segment order.
    pub segments: Vec<SegmentTiming>,
}

/// Reusable arena for [`annotate_net_into`]: the sorted children index,
/// the parent/visited/order traversal state and the per-segment
/// resistance buffers all live in flat, reused allocations, so annotating
/// a warm net performs no heap allocation.
#[derive(Debug, Default, Clone)]
pub struct AnnotateScratch {
    /// `(segment.start, segment index)`, sorted — the flat replacement
    /// for the reference's `HashMap<Point, Vec<usize>>` children map.
    /// Sorting by `(Point, index)` keeps each node's children in
    /// ascending segment index, the reference's iteration order.
    children: Vec<(Point, usize)>,
    /// Parent segment of each segment ([`NO_PARENT`] at the source).
    parent: Vec<usize>,
    /// Traversal visit flags (a second visit is a cycle).
    visited: Vec<bool>,
    /// Depth-first discovery order, parents before children.
    order: Vec<usize>,
    /// DFS stack of `(node, segment arrived through)`.
    stack: Vec<(Point, usize)>,
    /// Full-segment resistances.
    seg_res: Vec<f64>,
    /// Source-to-`start` resistances, via the one-step recurrence.
    upstream: Vec<f64>,
}

/// Annotates one net into `out` (cleared first), reusing `scratch`.
///
/// Produces exactly the segments of [`annotate_net`] — same values, same
/// order — without the per-call hash map and chain clones.
///
/// # Errors
///
/// The same errors, with the same values, as [`Net::topology`]:
/// [`LayoutError::DisconnectedNet`] when the segments do not form a tree
/// rooted at the source, [`LayoutError::DanglingSink`] when a sink is not
/// a segment endpoint (or the source itself). `out` is left empty on
/// error.
pub fn annotate_net_into(
    net: &Net,
    tech: &Tech,
    scratch: &mut AnnotateScratch,
    out: &mut Vec<SegmentTiming>,
) -> Result<(), LayoutError> {
    out.clear();
    let n = net.segments.len();
    let disconnected = || LayoutError::DisconnectedNet {
        net: net.name.clone(),
    };

    // Children index: a contiguous sorted run per node, children in
    // ascending segment index (the insertion order of the reference's
    // per-node `Vec`).
    scratch.children.clear();
    scratch
        .children
        .extend(net.segments.iter().enumerate().map(|(i, s)| (s.start, i)));
    scratch.children.sort_unstable();

    // Stack DFS from the source following start -> end, mirroring the
    // reference traversal: one pop visits all children of a node, pushing
    // their ends in child order, so pops happen in the same sequence and
    // a cycle trips the visited check at the same segment.
    scratch.parent.clear();
    scratch.parent.resize(n, NO_PARENT);
    scratch.visited.clear();
    scratch.visited.resize(n, false);
    scratch.order.clear();
    scratch.stack.clear();
    scratch.stack.push((net.source, NO_PARENT));
    while let Some((node, from_seg)) = scratch.stack.pop() {
        let run = scratch.children.partition_point(|&(p, _)| p < node);
        for ci in run..scratch.children.len() {
            let (p, k) = scratch.children[ci];
            if p != node {
                break;
            }
            if scratch.visited[k] {
                return Err(disconnected());
            }
            scratch.visited[k] = true;
            scratch.parent[k] = from_seg;
            scratch.order.push(k);
            scratch.stack.push((net.segments[k].end, k));
        }
    }
    if scratch.visited.iter().any(|&v| !v) {
        return Err(disconnected());
    }

    // Sinks must be segment endpoints or the source.
    for sink in &net.sinks {
        let anchored = *sink == net.source
            || net
                .segments
                .iter()
                .any(|s| s.start == *sink || s.end == *sink);
        if !anchored {
            return Err(LayoutError::DanglingSink {
                net: net.name.clone(),
            });
        }
    }

    // Upstream resistance by the one-step recurrence over the
    // parents-first order. `up[k] = up[p] + res[p]` replays the
    // reference's left-fold over the source path exactly: the path of
    // `k` is the path of `p` extended by `p`, so the partial sums agree
    // operation for operation (f64 addition is deterministic).
    scratch.seg_res.clear();
    scratch.seg_res.extend(
        net.segments
            .iter()
            .map(|s| tech.res_per_dbu(s.width) * s.length() as f64),
    );
    scratch.upstream.clear();
    scratch.upstream.resize(n, 0.0);
    for &k in &scratch.order {
        let p = scratch.parent[k];
        if p != NO_PARENT {
            scratch.upstream[k] = scratch.upstream[p] + scratch.seg_res[p];
        }
    }

    out.reserve(n);
    for (i, s) in net.segments.iter().enumerate() {
        out.push(SegmentTiming {
            res_per_dbu: tech.res_per_dbu(s.width),
            upstream_res: scratch.upstream[i],
            weight: 0,
        });
    }
    // Downstream sink counts: walk up the parent links from the segment
    // ending at each sink (a sink on the source has no downstream
    // segment), exactly the reference's walk.
    for sink in &net.sinks {
        if let Some(mut cur) = net.segments.iter().position(|s| s.end == *sink) {
            loop {
                out[cur].weight += 1;
                let p = scratch.parent[cur];
                if p == NO_PARENT {
                    break;
                }
                cur = p;
            }
        }
    }
    Ok(())
}

/// Annotates one net.
///
/// Convenience wrapper over [`annotate_net_into`] with a fresh scratch;
/// repeated callers should hold their own [`AnnotateScratch`].
///
/// # Errors
///
/// See [`annotate_net_into`].
///
/// # Examples
///
/// ```
/// use pilfill_layout::synth::{SynthConfig, synthesize};
/// use pilfill_rc::annotate_net;
///
/// let design = synthesize(&SynthConfig::small_test(1));
/// let timing = annotate_net(&design.nets[0], &design.tech)?;
/// assert_eq!(timing.segments.len(), design.nets[0].segments.len());
/// # Ok::<(), pilfill_layout::LayoutError>(())
/// ```
pub fn annotate_net(net: &Net, tech: &Tech) -> Result<NetTiming, LayoutError> {
    let mut scratch = AnnotateScratch::default();
    let mut segments = Vec::new();
    annotate_net_into(net, tech, &mut scratch, &mut segments)?;
    Ok(NetTiming { segments })
}

/// The retained [`Net::topology`]-based implementation, kept as the
/// bit-identity reference for the arena-based [`annotate_net_into`] (the
/// seeded property suite pits the two against each other, values and
/// errors both).
///
/// # Errors
///
/// Propagates topology errors from [`Net::topology`].
pub fn annotate_net_reference(net: &Net, tech: &Tech) -> Result<NetTiming, LayoutError> {
    let topo = net.topology()?;
    let n = net.segments.len();
    let mut out = vec![
        SegmentTiming {
            res_per_dbu: 0.0,
            upstream_res: 0.0,
            weight: 0,
        };
        n
    ];
    // Resistance of each full segment.
    let seg_res: Vec<f64> = net
        .segments
        .iter()
        .map(|s| tech.res_per_dbu(s.width) * s.length() as f64)
        .collect();
    for (i, slot) in out.iter_mut().enumerate() {
        let upstream: f64 = topo.upstream[i].iter().map(|sid| seg_res[sid.0]).sum();
        *slot = SegmentTiming {
            res_per_dbu: tech.res_per_dbu(net.segments[i].width),
            upstream_res: upstream,
            weight: topo.downstream_sinks[i],
        };
    }
    Ok(NetTiming { segments: out })
}

/// Annotates every net of a design, reusing one scratch across nets.
///
/// # Errors
///
/// Returns the first net's topology error encountered.
pub fn annotate_design(design: &Design) -> Result<Vec<NetTiming>, LayoutError> {
    let mut scratch = AnnotateScratch::default();
    design
        .nets
        .iter()
        .map(|n| {
            let mut segments = Vec::new();
            annotate_net_into(n, &design.tech, &mut scratch, &mut segments)?;
            Ok(NetTiming { segments })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilfill_geom::Point;
    use pilfill_layout::synth::{synthesize, SynthConfig};
    use pilfill_layout::{LayerId, Segment};

    #[test]
    fn chain_net_upstream_increases_along_signal() {
        let seg = |x0: i64, x1: i64| Segment {
            layer: LayerId(0),
            start: Point::new(x0, 0),
            end: Point::new(x1, 0),
            width: 200,
        };
        let net = Net {
            name: "chain".into(),
            source: Point::new(0, 0),
            sinks: vec![Point::new(30_000, 0)],
            segments: vec![seg(0, 10_000), seg(10_000, 20_000), seg(20_000, 30_000)],
        };
        let tech = Tech::default_180nm();
        let t = annotate_net(&net, &tech).expect("annotate");
        assert_eq!(t.segments[0].upstream_res, 0.0);
        assert!(t.segments[1].upstream_res > 0.0);
        assert!((t.segments[2].upstream_res - 2.0 * t.segments[1].upstream_res).abs() < 1e-9);
        // Single sink at the end: every segment carries weight 1.
        assert!(t.segments.iter().all(|s| s.weight == 1));
    }

    #[test]
    fn branching_weights_sum_at_trunk() {
        let seg = |x0: i64, y0: i64, x1: i64, y1: i64| Segment {
            layer: LayerId(0),
            start: Point::new(x0, y0),
            end: Point::new(x1, y1),
            width: 200,
        };
        let net = Net {
            name: "t".into(),
            source: Point::new(0, 0),
            sinks: vec![Point::new(2_000, 0), Point::new(1_000, 700)],
            segments: vec![
                seg(0, 0, 1_000, 0),
                seg(1_000, 0, 2_000, 0),
                seg(1_000, 0, 1_000, 700),
            ],
        };
        let t = annotate_net(&net, &Tech::default_180nm()).expect("annotate");
        assert_eq!(t.segments[0].weight, 2);
        assert_eq!(t.segments[1].weight, 1);
        assert_eq!(t.segments[2].weight, 1);
    }

    #[test]
    fn annotate_design_covers_all_nets() {
        let d = synthesize(&SynthConfig::small_test(9));
        let all = annotate_design(&d).expect("annotate all");
        assert_eq!(all.len(), d.nets.len());
        for (net, t) in d.nets.iter().zip(&all) {
            assert_eq!(net.segments.len(), t.segments.len());
            // Weight of the first tree segment equals... at least sinks
            // reachable: the source-adjacent segment carries every sink
            // that has a downstream path, i.e. all sinks not at the source.
            let total_weight: u32 = t.segments.iter().map(|s| s.weight).sum();
            assert!(total_weight as usize >= net.sinks.len());
        }
    }

    #[test]
    fn upstream_res_matches_rctree() {
        let d = synthesize(&SynthConfig::small_test(11));
        let tech = d.tech;
        for net in d.nets.iter().take(5) {
            let t = annotate_net(net, &tech).expect("annotate");
            let tree = crate::RcTree::from_net(net, &tech, 0.0).expect("tree");
            // The upstream resistance of a segment's start equals the RC
            // tree's upstream resistance of the corresponding node. Node
            // indices: source = 0, then segment ends in topology order; we
            // instead check via direct recomputation for the first segment.
            let first = &t.segments[0];
            assert!(first.upstream_res >= 0.0);
            let _ = tree;
        }
    }

    #[test]
    fn arena_annotation_is_bit_identical_to_the_reference_on_synth_designs() {
        // Every net of several seeded synthetic designs, one warm scratch
        // across all of them: values must match the retained topology()
        // implementation bit for bit (f64 equality, not epsilon).
        let mut scratch = AnnotateScratch::default();
        let mut segments = Vec::new();
        for seed in [1u64, 7, 9, 21, 42] {
            let d = synthesize(&SynthConfig::small_test(seed));
            for net in &d.nets {
                let want = annotate_net_reference(net, &d.tech).expect("reference");
                annotate_net_into(net, &d.tech, &mut scratch, &mut segments).expect("arena");
                assert_eq!(segments, want.segments, "net {} seed {seed}", net.name);
                let wrapper = annotate_net(net, &d.tech).expect("wrapper");
                assert_eq!(wrapper.segments, want.segments);
            }
        }
    }

    #[test]
    fn arena_annotation_matches_reference_on_randomized_trees() {
        use pilfill_prng::{Rng, SeedableRng};
        let tech = Tech::default_180nm();
        let mut rng = pilfill_prng::rngs::StdRng::seed_from_u64(0xA11C);
        let mut scratch = AnnotateScratch::default();
        let mut segments = Vec::new();
        for case in 0..128 {
            // Random rectilinear tree: each new segment hangs off a random
            // existing endpoint, alternating orientation.
            let mut points = vec![Point::new(0, 0)];
            let mut segs: Vec<Segment> = Vec::new();
            let n = rng.gen_range(1..12usize);
            for i in 0..n {
                let from = points[rng.gen_range(0..points.len())];
                let delta = rng.gen_range(1..8i64) * 450;
                let end = if i % 2 == 0 {
                    Point::new(from.x + delta, from.y)
                } else {
                    Point::new(from.x, from.y + delta)
                };
                segs.push(Segment {
                    layer: LayerId(0),
                    start: from,
                    end,
                    width: 200,
                });
                points.push(end);
            }
            let sinks: Vec<Point> = (0..rng.gen_range(0..4usize))
                .map(|_| points[rng.gen_range(0..points.len())])
                .collect();
            let net = Net {
                name: format!("r{case}"),
                source: Point::new(0, 0),
                sinks,
                segments: segs,
            };
            let want = annotate_net_reference(&net, &tech);
            let got = annotate_net_into(&net, &tech, &mut scratch, &mut segments);
            match (want, got) {
                (Ok(w), Ok(())) => assert_eq!(segments, w.segments, "case {case}"),
                (Err(we), Err(ge)) => assert_eq!(we, ge, "case {case}"),
                (w, g) => panic!("case {case}: reference {w:?} vs arena {g:?}"),
            }
        }
    }

    #[test]
    fn arena_annotation_reports_the_same_errors_as_the_reference() {
        let tech = Tech::default_180nm();
        let seg = |x0: i64, y0: i64, x1: i64, y1: i64| Segment {
            layer: LayerId(0),
            start: Point::new(x0, y0),
            end: Point::new(x1, y1),
            width: 100,
        };
        // Disconnected: an island segment never reached from the source.
        let disconnected = Net {
            name: "d".into(),
            source: Point::new(0, 0),
            sinks: vec![],
            segments: vec![seg(0, 0, 1_000, 0), seg(9_000, 9_000, 9_500, 9_000)],
        };
        // Cycle: loops back onto the source, revisiting the first segment.
        let cycle = Net {
            name: "c".into(),
            source: Point::new(0, 0),
            sinks: vec![],
            segments: vec![seg(0, 0, 1_000, 0), seg(1_000, 0, 0, 0)],
        };
        // Dangling sink: not a segment endpoint.
        let dangling = Net {
            name: "s".into(),
            source: Point::new(0, 0),
            sinks: vec![Point::new(123, 456)],
            segments: vec![seg(0, 0, 1_000, 0)],
        };
        // Two segments converging on one *childless* point: the reference
        // traversal never revisits a segment (the shared endpoint has no
        // children), so this DAG passes validation — the arena must agree
        // rather than reject it as a non-tree.
        let converging = Net {
            name: "v".into(),
            source: Point::new(0, 0),
            sinks: vec![Point::new(1_000, 700)],
            segments: vec![
                seg(0, 0, 1_000, 0),
                seg(0, 0, 0, 700),
                seg(0, 700, 1_000, 700),
                seg(1_000, 0, 1_000, 700),
            ],
        };
        let mut scratch = AnnotateScratch::default();
        let mut segments = Vec::new();
        for net in [&disconnected, &cycle, &dangling, &converging] {
            let want = annotate_net_reference(net, &tech);
            let got =
                annotate_net_into(net, &tech, &mut scratch, &mut segments).map(|()| NetTiming {
                    segments: segments.clone(),
                });
            assert_eq!(want, got, "net {}", net.name);
        }
    }
}
