//! Per-segment timing annotation: entry (upstream) resistance and
//! downstream-sink weights — the `R_l` and `W_l` inputs of the MDFC
//! formulations (paper Sections 4 and 5.2).

use pilfill_layout::{Design, LayoutError, Net, Tech};

/// Timing attributes of one routed segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentTiming {
    /// Per-unit-length resistance in ohm/dbu.
    pub res_per_dbu: f64,
    /// Total resistance from the net source to the segment's `start`
    /// (the "entry resistance" used in Eq. (13) once extended to the tile
    /// entry point).
    pub upstream_res: f64,
    /// Number of downstream sinks (the paper's weight `W_l`).
    pub weight: u32,
}

/// Timing annotation of a whole net.
#[derive(Debug, Clone, PartialEq)]
pub struct NetTiming {
    /// One entry per segment, in the net's segment order.
    pub segments: Vec<SegmentTiming>,
}

/// Annotates one net.
///
/// # Errors
///
/// Propagates topology errors from [`Net::topology`].
///
/// # Examples
///
/// ```
/// use pilfill_layout::synth::{SynthConfig, synthesize};
/// use pilfill_rc::annotate_net;
///
/// let design = synthesize(&SynthConfig::small_test(1));
/// let timing = annotate_net(&design.nets[0], &design.tech)?;
/// assert_eq!(timing.segments.len(), design.nets[0].segments.len());
/// # Ok::<(), pilfill_layout::LayoutError>(())
/// ```
pub fn annotate_net(net: &Net, tech: &Tech) -> Result<NetTiming, LayoutError> {
    let topo = net.topology()?;
    let n = net.segments.len();
    let mut out = vec![
        SegmentTiming {
            res_per_dbu: 0.0,
            upstream_res: 0.0,
            weight: 0,
        };
        n
    ];
    // Resistance of each full segment.
    let seg_res: Vec<f64> = net
        .segments
        .iter()
        .map(|s| tech.res_per_dbu(s.width) * s.length() as f64)
        .collect();
    for (i, slot) in out.iter_mut().enumerate() {
        let upstream: f64 = topo.upstream[i].iter().map(|sid| seg_res[sid.0]).sum();
        *slot = SegmentTiming {
            res_per_dbu: tech.res_per_dbu(net.segments[i].width),
            upstream_res: upstream,
            weight: topo.downstream_sinks[i],
        };
    }
    Ok(NetTiming { segments: out })
}

/// Annotates every net of a design.
///
/// # Errors
///
/// Returns the first net's topology error encountered.
pub fn annotate_design(design: &Design) -> Result<Vec<NetTiming>, LayoutError> {
    design
        .nets
        .iter()
        .map(|n| annotate_net(n, &design.tech))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilfill_geom::Point;
    use pilfill_layout::synth::{synthesize, SynthConfig};
    use pilfill_layout::{LayerId, Segment};

    #[test]
    fn chain_net_upstream_increases_along_signal() {
        let seg = |x0: i64, x1: i64| Segment {
            layer: LayerId(0),
            start: Point::new(x0, 0),
            end: Point::new(x1, 0),
            width: 200,
        };
        let net = Net {
            name: "chain".into(),
            source: Point::new(0, 0),
            sinks: vec![Point::new(30_000, 0)],
            segments: vec![seg(0, 10_000), seg(10_000, 20_000), seg(20_000, 30_000)],
        };
        let tech = Tech::default_180nm();
        let t = annotate_net(&net, &tech).expect("annotate");
        assert_eq!(t.segments[0].upstream_res, 0.0);
        assert!(t.segments[1].upstream_res > 0.0);
        assert!((t.segments[2].upstream_res - 2.0 * t.segments[1].upstream_res).abs() < 1e-9);
        // Single sink at the end: every segment carries weight 1.
        assert!(t.segments.iter().all(|s| s.weight == 1));
    }

    #[test]
    fn branching_weights_sum_at_trunk() {
        let seg = |x0: i64, y0: i64, x1: i64, y1: i64| Segment {
            layer: LayerId(0),
            start: Point::new(x0, y0),
            end: Point::new(x1, y1),
            width: 200,
        };
        let net = Net {
            name: "t".into(),
            source: Point::new(0, 0),
            sinks: vec![Point::new(2_000, 0), Point::new(1_000, 700)],
            segments: vec![
                seg(0, 0, 1_000, 0),
                seg(1_000, 0, 2_000, 0),
                seg(1_000, 0, 1_000, 700),
            ],
        };
        let t = annotate_net(&net, &Tech::default_180nm()).expect("annotate");
        assert_eq!(t.segments[0].weight, 2);
        assert_eq!(t.segments[1].weight, 1);
        assert_eq!(t.segments[2].weight, 1);
    }

    #[test]
    fn annotate_design_covers_all_nets() {
        let d = synthesize(&SynthConfig::small_test(9));
        let all = annotate_design(&d).expect("annotate all");
        assert_eq!(all.len(), d.nets.len());
        for (net, t) in d.nets.iter().zip(&all) {
            assert_eq!(net.segments.len(), t.segments.len());
            // Weight of the first tree segment equals... at least sinks
            // reachable: the source-adjacent segment carries every sink
            // that has a downstream path, i.e. all sinks not at the source.
            let total_weight: u32 = t.segments.iter().map(|s| s.weight).sum();
            assert!(total_weight as usize >= net.sinks.len());
        }
    }

    #[test]
    fn upstream_res_matches_rctree() {
        let d = synthesize(&SynthConfig::small_test(11));
        let tech = d.tech;
        for net in d.nets.iter().take(5) {
            let t = annotate_net(net, &tech).expect("annotate");
            let tree = crate::RcTree::from_net(net, &tech, 0.0).expect("tree");
            // The upstream resistance of a segment's start equals the RC
            // tree's upstream resistance of the corresponding node. Node
            // indices: source = 0, then segment ends in topology order; we
            // instead check via direct recomputation for the first segment.
            let first = &t.segments[0];
            assert!(first.upstream_res >= 0.0);
            let _ = tree;
        }
    }
}
