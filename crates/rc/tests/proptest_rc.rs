//! Randomized tests for the capacitance and Elmore models, driven by the
//! in-repo seeded PRNG so every run explores the same cases.

use pilfill_layout::{FillRules, Tech};
use pilfill_prng::rngs::StdRng;
use pilfill_prng::{Rng, SeedableRng};
use pilfill_rc::{max_fill_features, CapTable, CouplingModel, RcChain};

fn model() -> CouplingModel {
    CouplingModel::new(&Tech::default_180nm())
}

#[test]
fn delta_cap_exact_increasing_and_convex() {
    let m = model();
    let mut rng = StdRng::seed_from_u64(0x2C_0001);
    let mut checked = 0;
    while checked < 128 {
        let d = rng.gen_range(700i64..30_000);
        let w = rng.gen_range(100i64..500);
        let max_m = ((d - 1) / w).min(12) as u32;
        if max_m < 2 {
            continue;
        }
        checked += 1;
        let caps: Vec<f64> = (0..=max_m).map(|k| m.delta_cap_exact(k, d, w)).collect();
        for pair in caps.windows(2) {
            assert!(pair[1] > pair[0]);
        }
        for triple in caps.windows(3) {
            assert!(triple[2] - triple[1] >= triple[1] - triple[0]);
        }
    }
}

#[test]
fn linear_underestimates_exact_everywhere() {
    let m = model();
    let mut rng = StdRng::seed_from_u64(0x2C_0002);
    let mut checked = 0;
    while checked < 128 {
        let d = rng.gen_range(700i64..30_000);
        let w = rng.gen_range(100i64..500);
        let k = rng.gen_range(1u32..10);
        if (k as i64) * w >= d {
            continue;
        }
        checked += 1;
        assert!(m.delta_cap_linear(k, d, w) < m.delta_cap_exact(k, d, w));
    }
}

#[test]
fn cap_table_agrees_with_model() {
    let m = model();
    let mut rng = StdRng::seed_from_u64(0x2C_0003);
    for _ in 0..128 {
        let d = rng.gen_range(1_000i64..20_000);
        let w = rng.gen_range(150i64..450);
        let cap = ((d - 1) / w).min(10) as u32;
        let table = CapTable::build(&m, d, w, cap);
        for k in 0..=cap {
            assert_eq!(table.delta_cap(k), m.delta_cap_exact(k, d, w));
        }
    }
}

#[test]
fn max_fill_features_fits_and_is_maximal() {
    let mut rng = StdRng::seed_from_u64(0x2C_0004);
    for _ in 0..256 {
        let gap = rng.gen_range(0i64..30_000);
        let feature = rng.gen_range(100i64..600);
        let space = rng.gen_range(0i64..400);
        let buffer = rng.gen_range(0i64..500);
        let rules = FillRules {
            feature_size: feature,
            gap: space,
            buffer,
        };
        let m = max_fill_features(gap, rules) as i64;
        // m features fit: m*f + (m-1)*s + 2*b <= gap.
        if m > 0 {
            assert!(m * feature + (m - 1) * space + 2 * buffer <= gap);
        }
        // m+1 features do not fit.
        let m1 = m + 1;
        assert!(m1 * feature + (m1 - 1) * space + 2 * buffer > gap);
    }
}

#[test]
fn chain_delays_monotone_and_additive() {
    let mut rng = StdRng::seed_from_u64(0x2C_0005);
    for _ in 0..128 {
        let n = rng.gen_range(2usize..12);
        let r = rng.gen_range(0.1f64..50.0);
        let c = rng.gen_range(1e-16f64..1e-13);
        let inject = rng.gen_range(0usize..12) % n;
        let dc = rng.gen_range(1e-16f64..1e-14);
        let chain = RcChain::uniform(n, r, c);
        let before = chain.delays();
        for pair in before.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
        // Eq. (9) additivity against recomputation.
        let caps: Vec<f64> = (0..n)
            .map(|i| if i == inject { c + dc } else { c })
            .collect();
        let after = RcChain::new(vec![r; n], caps).delays();
        for k in 0..n {
            let predicted = chain.delay_increment(k, inject, dc);
            let got = after[k] - before[k];
            assert!(
                (got - predicted).abs() <= 1e-9 * predicted.max(1e-30),
                "stage {k}: {got} vs {predicted}"
            );
        }
    }
}

#[test]
fn cb_positive_and_decreasing_in_distance() {
    let m = model();
    let mut rng = StdRng::seed_from_u64(0x2C_0006);
    for _ in 0..256 {
        let d = rng.gen_range(100i64..100_000);
        let c1 = m.cb_per_m(d);
        let c2 = m.cb_per_m(d + 100);
        assert!(c1 > 0.0);
        assert!(c2 < c1);
    }
}
