//! Property-based tests for the capacitance and Elmore models.

use pilfill_layout::{FillRules, Tech};
use pilfill_rc::{max_fill_features, CapTable, CouplingModel, RcChain};
use proptest::prelude::*;

fn model() -> CouplingModel {
    CouplingModel::new(&Tech::default_180nm())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn delta_cap_exact_increasing_and_convex(
        d in 700i64..30_000,
        w in 100i64..500,
    ) {
        let m = model();
        let max_m = ((d - 1) / w).min(12) as u32;
        prop_assume!(max_m >= 2);
        let caps: Vec<f64> = (0..=max_m).map(|k| m.delta_cap_exact(k, d, w)).collect();
        for pair in caps.windows(2) {
            prop_assert!(pair[1] > pair[0]);
        }
        for triple in caps.windows(3) {
            prop_assert!(triple[2] - triple[1] >= triple[1] - triple[0]);
        }
    }

    #[test]
    fn linear_underestimates_exact_everywhere(
        d in 700i64..30_000,
        w in 100i64..500,
        k in 1u32..10,
    ) {
        let m = model();
        prop_assume!((k as i64) * w < d);
        prop_assert!(m.delta_cap_linear(k, d, w) < m.delta_cap_exact(k, d, w));
    }

    #[test]
    fn cap_table_agrees_with_model(
        d in 1_000i64..20_000,
        w in 150i64..450,
    ) {
        let m = model();
        let cap = ((d - 1) / w).min(10) as u32;
        let table = CapTable::build(&m, d, w, cap);
        for k in 0..=cap {
            prop_assert_eq!(table.delta_cap(k), m.delta_cap_exact(k, d, w));
        }
    }

    #[test]
    fn max_fill_features_fits_and_is_maximal(
        gap in 0i64..30_000,
        feature in 100i64..600,
        space in 0i64..400,
        buffer in 0i64..500,
    ) {
        let rules = FillRules {
            feature_size: feature,
            gap: space,
            buffer,
        };
        let m = max_fill_features(gap, rules) as i64;
        // m features fit: m*f + (m-1)*s + 2*b <= gap.
        if m > 0 {
            prop_assert!(m * feature + (m - 1) * space + 2 * buffer <= gap);
        }
        // m+1 features do not fit.
        let m1 = m + 1;
        prop_assert!(m1 * feature + (m1 - 1) * space + 2 * buffer > gap);
    }

    #[test]
    fn chain_delays_monotone_and_additive(
        n in 2usize..12,
        r in 0.1f64..50.0,
        c in 1e-16f64..1e-13,
        inject in 0usize..12,
        dc in 1e-16f64..1e-14,
    ) {
        let inject = inject % n;
        let chain = RcChain::uniform(n, r, c);
        let before = chain.delays();
        for pair in before.windows(2) {
            prop_assert!(pair[1] >= pair[0]);
        }
        // Eq. (9) additivity against recomputation.
        let caps: Vec<f64> = (0..n)
            .map(|i| if i == inject { c + dc } else { c })
            .collect();
        let after = RcChain::new(vec![r; n], caps).delays();
        for k in 0..n {
            let predicted = chain.delay_increment(k, inject, dc);
            let got = after[k] - before[k];
            prop_assert!(
                (got - predicted).abs() <= 1e-9 * predicted.max(1e-30),
                "stage {k}: {got} vs {predicted}"
            );
        }
    }

    #[test]
    fn cb_positive_and_decreasing_in_distance(d in 100i64..100_000) {
        let m = model();
        let c1 = m.cb_per_m(d);
        let c2 = m.cb_per_m(d + 100);
        prop_assert!(c1 > 0.0);
        prop_assert!(c2 < c1);
    }
}
