//! Property-based tests for the geometry kernel.

use pilfill_geom::{Coord, Grid, Interval, IntervalSet, Rect};
use proptest::prelude::*;

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (-1000i64..1000, 0i64..200).prop_map(|(lo, len)| Interval::new(lo, lo + len))
}

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (-500i64..500, -500i64..500, 0i64..300, 0i64..300)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

proptest! {
    #[test]
    fn interval_intersection_commutes(a in interval_strategy(), b in interval_strategy()) {
        prop_assert_eq!(a.intersection(b), b.intersection(a));
    }

    #[test]
    fn interval_intersection_shorter_than_inputs(a in interval_strategy(), b in interval_strategy()) {
        let i = a.intersection(b);
        prop_assert!(i.len() <= a.len());
        prop_assert!(i.len() <= b.len());
    }

    #[test]
    fn interval_hull_contains_both(a in interval_strategy(), b in interval_strategy()) {
        let h = a.hull(b);
        prop_assert!(h.contains_interval(a));
        prop_assert!(h.contains_interval(b));
    }

    #[test]
    fn rect_intersection_area_bounded(a in rect_strategy(), b in rect_strategy()) {
        let i = a.intersection(&b);
        prop_assert!(i.area() <= a.area().min(b.area()));
        prop_assert!(a.contains_rect(&i));
        prop_assert!(b.contains_rect(&i));
    }

    #[test]
    fn rect_transpose_preserves_area(r in rect_strategy()) {
        prop_assert_eq!(r.transposed().area(), r.area());
        prop_assert_eq!(r.transposed().transposed(), r);
    }

    #[test]
    fn interval_set_insert_then_contains(
        ivs in prop::collection::vec(interval_strategy(), 0..20),
        probe in -1000i64..1200,
    ) {
        let set: IntervalSet = ivs.iter().copied().collect();
        let brute = ivs.iter().any(|iv| iv.contains(probe));
        prop_assert_eq!(set.contains(probe), brute);
    }

    #[test]
    fn interval_set_len_matches_brute_force(
        ivs in prop::collection::vec(interval_strategy(), 0..20),
    ) {
        let set: IntervalSet = ivs.iter().copied().collect();
        // Brute force: count covered unit cells in the relevant range.
        let brute: Coord = (-1000..1200)
            .filter(|&x| ivs.iter().any(|iv| iv.contains(x)))
            .count() as Coord;
        prop_assert_eq!(set.total_len(), brute);
    }

    #[test]
    fn interval_set_remove_then_disjoint(
        ivs in prop::collection::vec(interval_strategy(), 1..15),
        cut in interval_strategy(),
    ) {
        let mut set: IntervalSet = ivs.iter().copied().collect();
        set.remove(cut);
        for iv in set.iter() {
            prop_assert!(!iv.overlaps(cut));
            prop_assert!(!iv.is_empty());
        }
        // Still sorted and disjoint.
        let v = set.to_vec();
        for w in v.windows(2) {
            prop_assert!(w[0].hi < w[1].lo, "intervals must stay separated: {} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn interval_set_gaps_partition_query(
        ivs in prop::collection::vec(interval_strategy(), 0..15),
        q in interval_strategy(),
    ) {
        let set: IntervalSet = ivs.iter().copied().collect();
        let gaps = set.gaps_within(q);
        let gap_len: Coord = gaps.iter().map(Interval::len).sum();
        prop_assert_eq!(gap_len + set.covered_len_within(q), q.len());
        for g in &gaps {
            prop_assert!(q.contains_interval(*g));
            for x in [g.lo, g.hi - 1] {
                prop_assert!(!set.contains(x));
            }
        }
    }

    #[test]
    fn grid_cells_overlapping_matches_brute(
        rect in rect_strategy(),
        pitch in 1i64..100,
    ) {
        let g = Grid::square(Rect::new(-200, -200, 400, 350), pitch);
        let mut fast: Vec<_> = g.cells_overlapping(&rect).collect();
        let mut brute: Vec<_> = g
            .indices()
            .filter(|&c| g.cell_rect(c).overlaps(&rect))
            .collect();
        fast.sort_unstable();
        brute.sort_unstable();
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn grid_cell_areas_sum_to_bounds(
        w in 1i64..500, h in 1i64..500, pitch in 1i64..120,
    ) {
        let g = Grid::square(Rect::new(0, 0, w, h), pitch);
        let total: i64 = g.indices().map(|c| g.cell_rect(c).area()).sum();
        prop_assert_eq!(total, (w * h) as i64);
    }
}
