//! Randomized property tests for the geometry kernel, driven by the
//! in-repo deterministic PRNG (seeded, so every run explores the same
//! cases).

use pilfill_geom::{Coord, Grid, Interval, IntervalSet, Rect};
use pilfill_prng::rngs::StdRng;
use pilfill_prng::{Rng, SeedableRng};

const CASES: usize = 256;

fn rand_interval(rng: &mut StdRng) -> Interval {
    let lo = rng.gen_range(-1000i64..1000);
    let len = rng.gen_range(0i64..200);
    Interval::new(lo, lo + len)
}

fn rand_rect(rng: &mut StdRng) -> Rect {
    let x = rng.gen_range(-500i64..500);
    let y = rng.gen_range(-500i64..500);
    let w = rng.gen_range(0i64..300);
    let h = rng.gen_range(0i64..300);
    Rect::new(x, y, x + w, y + h)
}

fn rand_intervals(rng: &mut StdRng, max: usize) -> Vec<Interval> {
    let n = rng.gen_range(0usize..max);
    (0..n).map(|_| rand_interval(rng)).collect()
}

#[test]
fn interval_intersection_commutes_and_shrinks() {
    let mut rng = StdRng::seed_from_u64(0x6E01);
    for _ in 0..CASES {
        let a = rand_interval(&mut rng);
        let b = rand_interval(&mut rng);
        let i = a.intersection(b);
        assert_eq!(i, b.intersection(a));
        assert!(i.len() <= a.len());
        assert!(i.len() <= b.len());
    }
}

#[test]
fn interval_hull_contains_both() {
    let mut rng = StdRng::seed_from_u64(0x6E02);
    for _ in 0..CASES {
        let a = rand_interval(&mut rng);
        let b = rand_interval(&mut rng);
        let h = a.hull(b);
        assert!(h.contains_interval(a));
        assert!(h.contains_interval(b));
    }
}

#[test]
fn rect_intersection_area_bounded() {
    let mut rng = StdRng::seed_from_u64(0x6E03);
    for _ in 0..CASES {
        let a = rand_rect(&mut rng);
        let b = rand_rect(&mut rng);
        let i = a.intersection(&b);
        assert!(i.area() <= a.area().min(b.area()));
        assert!(a.contains_rect(&i));
        assert!(b.contains_rect(&i));
    }
}

#[test]
fn rect_transpose_preserves_area() {
    let mut rng = StdRng::seed_from_u64(0x6E04);
    for _ in 0..CASES {
        let r = rand_rect(&mut rng);
        assert_eq!(r.transposed().area(), r.area());
        assert_eq!(r.transposed().transposed(), r);
    }
}

#[test]
fn interval_set_insert_then_contains() {
    let mut rng = StdRng::seed_from_u64(0x6E05);
    for _ in 0..CASES {
        let ivs = rand_intervals(&mut rng, 20);
        let probe = rng.gen_range(-1000i64..1200);
        let set: IntervalSet = ivs.iter().copied().collect();
        let brute = ivs.iter().any(|iv| iv.contains(probe));
        assert_eq!(set.contains(probe), brute);
    }
}

#[test]
fn interval_set_len_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(0x6E06);
    for _ in 0..64 {
        let ivs = rand_intervals(&mut rng, 20);
        let set: IntervalSet = ivs.iter().copied().collect();
        // Brute force: count covered unit cells in the relevant range.
        let brute: Coord = (-1000..1200)
            .filter(|&x| ivs.iter().any(|iv| iv.contains(x)))
            .count() as Coord;
        assert_eq!(set.total_len(), brute);
    }
}

#[test]
fn interval_set_remove_then_disjoint() {
    let mut rng = StdRng::seed_from_u64(0x6E07);
    for _ in 0..CASES {
        let mut ivs = rand_intervals(&mut rng, 15);
        ivs.push(rand_interval(&mut rng)); // at least one
        let cut = rand_interval(&mut rng);
        let mut set: IntervalSet = ivs.iter().copied().collect();
        set.remove(cut);
        for iv in set.iter() {
            assert!(!iv.overlaps(cut));
            assert!(!iv.is_empty());
        }
        // Still sorted and disjoint.
        let v = set.to_vec();
        for w in v.windows(2) {
            assert!(
                w[0].hi < w[1].lo,
                "intervals must stay separated: {} vs {}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn interval_set_gaps_partition_query() {
    let mut rng = StdRng::seed_from_u64(0x6E08);
    for _ in 0..CASES {
        let ivs = rand_intervals(&mut rng, 15);
        let q = rand_interval(&mut rng);
        let set: IntervalSet = ivs.iter().copied().collect();
        let gaps = set.gaps_within(q);
        let gap_len: Coord = gaps.iter().map(Interval::len).sum();
        assert_eq!(gap_len + set.covered_len_within(q), q.len());
        for g in &gaps {
            assert!(q.contains_interval(*g));
            for x in [g.lo, g.hi - 1] {
                assert!(!set.contains(x));
            }
        }
    }
}

#[test]
fn grid_cells_overlapping_matches_brute() {
    let mut rng = StdRng::seed_from_u64(0x6E09);
    for _ in 0..64 {
        let rect = rand_rect(&mut rng);
        let pitch = rng.gen_range(1i64..100);
        let g = Grid::square(Rect::new(-200, -200, 400, 350), pitch);
        let mut fast: Vec<_> = g.cells_overlapping(&rect).collect();
        let mut brute: Vec<_> = g
            .indices()
            .filter(|&c| g.cell_rect(c).overlaps(&rect))
            .collect();
        fast.sort_unstable();
        brute.sort_unstable();
        assert_eq!(fast, brute);
    }
}

#[test]
fn grid_cell_areas_sum_to_bounds() {
    let mut rng = StdRng::seed_from_u64(0x6E0A);
    for _ in 0..CASES {
        let w = rng.gen_range(1i64..500);
        let h = rng.gen_range(1i64..500);
        let pitch = rng.gen_range(1i64..120);
        let g = Grid::square(Rect::new(0, 0, w, h), pitch);
        let total: i64 = g.indices().map(|c| g.cell_rect(c).area()).sum();
        assert_eq!(total, w * h);
    }
}
