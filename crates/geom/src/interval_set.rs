use crate::{Coord, Interval};

/// A set of disjoint, sorted, half-open [`Interval`]s over a line.
///
/// Used by the scan-line slack-column extraction to track which parts of
/// the sweep axis are currently free of active lines, and by the density
/// engine to accumulate covered length.
///
/// Invariants (maintained by every operation):
/// - intervals are non-empty,
/// - sorted by `lo`,
/// - pairwise disjoint *and* non-touching (touching intervals are merged).
///
/// # Examples
///
/// ```
/// use pilfill_geom::{Interval, IntervalSet};
///
/// let mut set = IntervalSet::new();
/// set.insert(Interval::new(0, 10));
/// set.insert(Interval::new(20, 30));
/// set.insert(Interval::new(10, 20)); // bridges the gap -> merged
/// assert_eq!(set.iter().count(), 1);
/// assert_eq!(set.total_len(), 30);
///
/// set.remove(Interval::new(5, 25));
/// assert_eq!(set.to_vec(), vec![Interval::new(0, 5), Interval::new(25, 30)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntervalSet {
    ivs: Vec<Interval>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set covering a single interval (empty input gives an empty
    /// set).
    pub fn from_interval(iv: Interval) -> Self {
        let mut s = Self::new();
        s.insert(iv);
        s
    }

    /// `true` if no points are covered.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Total covered length.
    pub fn total_len(&self) -> Coord {
        self.ivs.iter().map(Interval::len).sum()
    }

    /// `true` if `x` is covered.
    pub fn contains(&self, x: Coord) -> bool {
        match self.ivs.binary_search_by(|iv| iv.lo.cmp(&x)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => self.ivs[i - 1].contains(x),
        }
    }

    /// Adds `iv` to the covered set, merging with neighbours.
    pub fn insert(&mut self, iv: Interval) {
        if iv.is_empty() {
            return;
        }
        // Find the run of existing intervals that touch or overlap `iv`.
        let start = self.ivs.partition_point(|e| e.hi < iv.lo);
        let end = self.ivs.partition_point(|e| e.lo <= iv.hi);
        let merged = self.ivs[start..end].iter().fold(iv, |acc, e| acc.hull(*e));
        self.ivs.splice(start..end, std::iter::once(merged));
    }

    /// Removes `iv` from the covered set, splitting intervals as needed.
    pub fn remove(&mut self, iv: Interval) {
        if iv.is_empty() || self.ivs.is_empty() {
            return;
        }
        let start = self.ivs.partition_point(|e| e.hi <= iv.lo);
        let end = self.ivs.partition_point(|e| e.lo < iv.hi);
        if start >= end {
            return;
        }
        let mut keep: Vec<Interval> = Vec::with_capacity(2);
        let first = self.ivs[start];
        let last = self.ivs[end - 1];
        if first.lo < iv.lo {
            keep.push(Interval::new(first.lo, iv.lo));
        }
        if iv.hi < last.hi {
            keep.push(Interval::new(iv.hi, last.hi));
        }
        self.ivs.splice(start..end, keep);
    }

    /// Iterates the disjoint intervals in ascending order.
    pub fn iter(&self) -> std::slice::Iter<'_, Interval> {
        self.ivs.iter()
    }

    /// The intervals as a sorted vector.
    pub fn to_vec(&self) -> Vec<Interval> {
        self.ivs.clone()
    }

    /// The parts of `iv` *not* covered by the set, in ascending order.
    pub fn gaps_within(&self, iv: Interval) -> Vec<Interval> {
        let mut gaps = Vec::new();
        if iv.is_empty() {
            return gaps;
        }
        let mut cursor = iv.lo;
        for e in &self.ivs {
            if e.hi <= iv.lo {
                continue;
            }
            if e.lo >= iv.hi {
                break;
            }
            if e.lo > cursor {
                gaps.push(Interval::new(cursor, e.lo));
            }
            cursor = cursor.max(e.hi);
        }
        if cursor < iv.hi {
            gaps.push(Interval::new(cursor, iv.hi));
        }
        gaps
    }

    /// Total length of `iv` covered by the set.
    pub fn covered_len_within(&self, iv: Interval) -> Coord {
        self.ivs.iter().map(|e| e.intersection(iv).len()).sum()
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<T: IntoIterator<Item = Interval>>(iter: T) -> Self {
        let mut s = Self::new();
        for iv in iter {
            s.insert(iv);
        }
        s
    }
}

impl Extend<Interval> for IntervalSet {
    fn extend<T: IntoIterator<Item = Interval>>(&mut self, iter: T) {
        for iv in iter {
            self.insert(iv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ivs: &[(Coord, Coord)]) -> IntervalSet {
        ivs.iter().map(|&(a, b)| Interval::new(a, b)).collect()
    }

    #[test]
    fn insert_merges_touching_and_overlapping() {
        let s = set(&[(0, 5), (5, 10), (20, 25), (24, 30)]);
        assert_eq!(
            s.to_vec(),
            vec![Interval::new(0, 10), Interval::new(20, 30)]
        );
        assert_eq!(s.total_len(), 20);
    }

    #[test]
    fn insert_empty_is_noop() {
        let mut s = set(&[(0, 5)]);
        s.insert(Interval::new(3, 3));
        assert_eq!(s.to_vec(), vec![Interval::new(0, 5)]);
    }

    #[test]
    fn insert_bridging_collapses_many() {
        let mut s = set(&[(0, 2), (4, 6), (8, 10)]);
        s.insert(Interval::new(1, 9));
        assert_eq!(s.to_vec(), vec![Interval::new(0, 10)]);
    }

    #[test]
    fn remove_splits_and_trims() {
        let mut s = set(&[(0, 10)]);
        s.remove(Interval::new(3, 7));
        assert_eq!(s.to_vec(), vec![Interval::new(0, 3), Interval::new(7, 10)]);

        let mut s = set(&[(0, 10), (20, 30)]);
        s.remove(Interval::new(5, 25));
        assert_eq!(s.to_vec(), vec![Interval::new(0, 5), Interval::new(25, 30)]);

        let mut s = set(&[(0, 10)]);
        s.remove(Interval::new(-5, 15));
        assert!(s.is_empty());
    }

    #[test]
    fn remove_outside_is_noop() {
        let mut s = set(&[(5, 10)]);
        s.remove(Interval::new(0, 5));
        s.remove(Interval::new(10, 12));
        assert_eq!(s.to_vec(), vec![Interval::new(5, 10)]);
    }

    #[test]
    fn contains_uses_half_open_semantics() {
        let s = set(&[(0, 5), (10, 15)]);
        assert!(s.contains(0));
        assert!(!s.contains(5));
        assert!(s.contains(14));
        assert!(!s.contains(15));
        assert!(!s.contains(7));
    }

    #[test]
    fn gaps_within_covers_complement() {
        let s = set(&[(2, 4), (6, 8)]);
        assert_eq!(
            s.gaps_within(Interval::new(0, 10)),
            vec![
                Interval::new(0, 2),
                Interval::new(4, 6),
                Interval::new(8, 10)
            ]
        );
        // Gap query fully inside one interval: no gaps.
        assert!(s.gaps_within(Interval::new(2, 4)).is_empty());
        // Query over empty set: everything is a gap.
        let empty = IntervalSet::new();
        assert_eq!(
            empty.gaps_within(Interval::new(1, 3)),
            vec![Interval::new(1, 3)]
        );
    }

    #[test]
    fn covered_len_within_partial_overlaps() {
        let s = set(&[(0, 10), (20, 30)]);
        assert_eq!(s.covered_len_within(Interval::new(5, 25)), 10);
        assert_eq!(s.covered_len_within(Interval::new(-10, 50)), 20);
        assert_eq!(s.covered_len_within(Interval::new(12, 18)), 0);
    }

    #[test]
    fn gaps_plus_covered_equals_query_len() {
        let s = set(&[(3, 9), (15, 21), (40, 45)]);
        let q = Interval::new(0, 50);
        let gap_len: Coord = s.gaps_within(q).iter().map(Interval::len).sum();
        assert_eq!(gap_len + s.covered_len_within(q), q.len());
    }
}
