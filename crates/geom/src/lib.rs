//! # pilfill-geom
//!
//! Integer-coordinate rectilinear geometry kernel for the PIL-Fill area
//! fill synthesis system.
//!
//! All coordinates are expressed in database units ([`Coord`], one unit is
//! typically one nanometer). The kernel provides the primitives every other
//! crate in the workspace builds on:
//!
//! - [`Point`] and axis-aligned [`Rect`] with the usual predicates
//!   (intersection, containment, area, clipping);
//! - half-open 1-D [`Interval`]s and a disjoint [`IntervalSet`] used to track
//!   free (fillable) space during scan-line sweeps;
//! - a uniform [`Grid`] mapping between continuous coordinates and discrete
//!   cell (site or tile) indices;
//! - the routing [`Dir`] (preferred direction) with axis transposition
//!   helpers so all algorithms can be written for one orientation;
//! - the [`units`] module: checked, debug-asserted conversions between the
//!   coordinate, index and count domains — the only sanctioned way to move
//!   between `Coord`, `usize` and `u32` in this workspace.
//!
//! # Examples
//!
//! ```
//! use pilfill_geom::{Rect, Grid};
//!
//! let die = Rect::new(0, 0, 1_000, 1_000);
//! let wire = Rect::new(100, 480, 900, 520);
//! assert!(die.contains_rect(&wire));
//!
//! let tiles = Grid::new(die, 100, 100);
//! assert_eq!(tiles.nx(), 10);
//! assert_eq!(tiles.cells_overlapping(&wire).count(), 16); // 8 columns x 2 rows
//! ```

mod dir;
mod grid;
mod interval;
mod interval_set;
mod point;
mod rect;
pub mod units;

pub use dir::Dir;
pub use grid::{CellIndex, Grid};
pub use interval::Interval;
pub use interval_set::IntervalSet;
pub use point::Point;
pub use rect::Rect;
pub use units::UnitError;

/// Database-unit coordinate (conventionally 1 dbu = 1 nm).
pub type Coord = i64;

/// Squared database units, used for areas.
pub type Area = i64;
