//! Unit-safe arithmetic and conversions for [`Coord`] and [`Area`].
//!
//! Every conversion between the coordinate domain (`i64` database units),
//! the index domain (`usize` cell/site indices) and the count domain
//! (`u32` feature counts) in the workspace goes through this module
//! instead of a bare `as` cast — the `xtask` lint (`as-cast` rule)
//! enforces it. The handful of raw casts that remain live here, each
//! behind a debug-mode range assertion, so there is exactly one audited
//! place where integer domains meet.
//!
//! Two flavors are provided:
//!
//! - `try_*` functions return a [`UnitError`] and are for validating
//!   *untrusted* values (file input, die-sized products);
//! - the plain functions ([`index`], [`coord`], [`area`]) are for values
//!   whose range is already established by construction; they assert in
//!   debug builds and compile to a bare cast in release builds.
//!
//! # Examples
//!
//! ```
//! use pilfill_geom::units;
//!
//! assert_eq!(units::index(42), 42usize);
//! assert_eq!(units::coord(7usize), 7i64);
//! assert_eq!(units::checked_area(1 << 40, 1 << 40), None); // would overflow i64
//! assert!(units::try_index(-1).is_err());
//! ```

use crate::{Area, Coord};

/// A coordinate/index/area conversion that cannot be represented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitError {
    /// A negative coordinate cannot become an index.
    Negative(Coord),
    /// The value does not fit the destination type.
    Overflow(i128),
}

impl std::fmt::Display for UnitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnitError::Negative(v) => write!(f, "negative coordinate {v} used as an index"),
            UnitError::Overflow(v) => write!(f, "value {v} overflows the destination type"),
        }
    }
}

impl std::error::Error for UnitError {}

/// Converts a coordinate to a cell/site index, rejecting negatives and
/// (on 32-bit hosts) overflow.
///
/// # Errors
///
/// [`UnitError::Negative`] for negative input, [`UnitError::Overflow`]
/// when the value does not fit a `usize`.
pub fn try_index(c: Coord) -> Result<usize, UnitError> {
    if c < 0 {
        return Err(UnitError::Negative(c));
    }
    usize::try_from(c).map_err(|_| UnitError::Overflow(i128::from(c)))
}

/// Converts a coordinate already known to be a valid index.
///
/// Debug builds assert the range; release builds compile to a bare cast.
pub fn index(c: Coord) -> usize {
    debug_assert!(
        try_index(c).is_ok(),
        "coordinate {c} is not a valid index (negative or too large)"
    );
    c as usize // audited: asserted non-negative above; pilfill: allow(as-cast)
}

/// Converts a cell/site index to a coordinate, rejecting values above
/// `i64::MAX` (only reachable on exotic hosts).
///
/// # Errors
///
/// [`UnitError::Overflow`] when the index does not fit a [`Coord`].
pub fn try_coord(i: usize) -> Result<Coord, UnitError> {
    Coord::try_from(i).map_err(|_| UnitError::Overflow(i as i128))
}

/// Converts an index already known to fit the coordinate range.
///
/// Debug builds assert the range; release builds compile to a bare cast.
pub fn coord(i: usize) -> Coord {
    debug_assert!(
        try_coord(i).is_ok(),
        "index {i} does not fit a 64-bit coordinate"
    );
    i as Coord // audited: asserted in range above; pilfill: allow(as-cast)
}

/// `width x height` as an exact area, `None` on negative-clamped-to-zero
/// inputs whose product overflows `i64` (possible from `i64::MAX`-sized
/// die rectangles).
pub fn checked_area(width: Coord, height: Coord) -> Option<Area> {
    width.max(0).checked_mul(height.max(0))
}

/// `width x height` as an exact area for dimensions established to be
/// die-bounded. Debug builds assert no overflow; release builds multiply.
pub fn area(width: Coord, height: Coord) -> Area {
    debug_assert!(
        checked_area(width, height).is_some(),
        "area {width} x {height} overflows i64"
    );
    width.max(0) * height.max(0)
}

/// Saturates a feature count into `u32` (budgets are `u64`, per-tile
/// counts `u32`; a tile can never physically hold more than `u32::MAX`
/// features, so saturation is the correct total behavior).
pub fn saturating_count(v: u64) -> u32 {
    // audited: explicitly saturated to the destination range; pilfill: allow(as-cast)
    v.min(u64::from(u32::MAX)) as u32
}

/// An exact `f64` image of an area, asserting (debug builds) that the
/// value is inside `f64`'s 2^53 exact-integer window — beyond it density
/// ratios silently lose units.
pub fn to_f64(v: Area) -> f64 {
    const EXACT: i64 = 1 << 53;
    debug_assert!(
        (-EXACT..=EXACT).contains(&v),
        "area {v} exceeds f64's exact integer range"
    );
    v as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_index_rejects_negative_and_accepts_range() {
        assert_eq!(try_index(0), Ok(0));
        assert_eq!(try_index(12345), Ok(12345));
        assert_eq!(try_index(-1), Err(UnitError::Negative(-1)));
        assert_eq!(index(77), 77);
    }

    #[test]
    fn try_coord_round_trips() {
        assert_eq!(try_coord(0), Ok(0));
        assert_eq!(
            try_coord(usize::MAX),
            Err(UnitError::Overflow(usize::MAX as i128))
        );
        assert_eq!(coord(index(99)), 99);
    }

    #[test]
    fn checked_area_boundary_cases() {
        assert_eq!(checked_area(4, 3), Some(12));
        assert_eq!(checked_area(-5, 3), Some(0));
        assert_eq!(checked_area(i64::MAX, 1), Some(i64::MAX));
        assert_eq!(checked_area(i64::MAX, 2), None);
        assert_eq!(checked_area(1 << 32, 1 << 32), None);
        assert_eq!(
            checked_area((1 << 31) - 1, 1 << 31),
            Some(((1i64 << 31) - 1) << 31)
        );
    }

    #[test]
    fn area_matches_checked_in_range() {
        assert_eq!(area(100, 200), 20_000);
        assert_eq!(area(-1, 5), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "overflows i64")]
    fn area_overflow_asserts_in_debug() {
        let _ = area(i64::MAX, 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not a valid index")]
    fn negative_index_asserts_in_debug() {
        let _ = index(-3);
    }

    #[test]
    fn saturating_count_clamps() {
        assert_eq!(saturating_count(5), 5);
        assert_eq!(saturating_count(u64::MAX), u32::MAX);
        assert_eq!(saturating_count(u64::from(u32::MAX) + 1), u32::MAX);
    }

    #[test]
    fn to_f64_is_exact_in_window() {
        assert_eq!(to_f64(1 << 52), (1u64 << 52) as f64);
        assert_eq!(to_f64(-42), -42.0);
    }

    #[test]
    fn unit_error_displays() {
        assert!(UnitError::Negative(-2).to_string().contains("-2"));
        assert!(UnitError::Overflow(1 << 70)
            .to_string()
            .contains("overflows"));
    }
}
