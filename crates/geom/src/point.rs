use crate::{Coord, Dir};

/// A 2-D point in database units.
///
/// # Examples
///
/// ```
/// use pilfill_geom::Point;
///
/// let p = Point::new(3, 4);
/// let q = p.translated(1, -4);
/// assert_eq!(q, Point::new(4, 0));
/// assert_eq!(p.manhattan_distance(q), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Coord,
    /// Vertical coordinate.
    pub y: Coord,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub const fn new(x: Coord, y: Coord) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const fn origin() -> Self {
        Self { x: 0, y: 0 }
    }

    /// Returns this point moved by `(dx, dy)`.
    #[must_use]
    pub const fn translated(self, dx: Coord, dy: Coord) -> Self {
        Self {
            x: self.x + dx,
            y: self.y + dy,
        }
    }

    /// Manhattan (L1) distance to `other`.
    pub fn manhattan_distance(self, other: Self) -> Coord {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// The coordinate along `dir`: `x` for [`Dir::Horizontal`], `y` for
    /// [`Dir::Vertical`].
    pub fn along(self, dir: Dir) -> Coord {
        match dir {
            Dir::Horizontal => self.x,
            Dir::Vertical => self.y,
        }
    }

    /// The coordinate across (perpendicular to) `dir`.
    pub fn across(self, dir: Dir) -> Coord {
        self.along(dir.perpendicular())
    }

    /// Returns the point with `x` and `y` swapped.
    #[must_use]
    pub const fn transposed(self) -> Self {
        Self {
            x: self.y,
            y: self.x,
        }
    }
}

impl From<(Coord, Coord)> for Point {
    fn from((x, y): (Coord, Coord)) -> Self {
        Self::new(x, y)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let p = Point::new(-2, 7);
        assert_eq!(p.x, -2);
        assert_eq!(p.y, 7);
        assert_eq!(Point::origin(), Point::default());
        assert_eq!(Point::from((1, 2)), Point::new(1, 2));
    }

    #[test]
    fn translation_is_additive() {
        let p = Point::new(5, 5);
        assert_eq!(p.translated(0, 0), p);
        assert_eq!(p.translated(2, 3).translated(-2, -3), p);
    }

    #[test]
    fn manhattan_distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1, 9);
        let b = Point::new(-4, 2);
        assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        assert_eq!(a.manhattan_distance(a), 0);
        assert_eq!(a.manhattan_distance(b), 12);
    }

    #[test]
    fn along_and_across_follow_direction() {
        let p = Point::new(10, 20);
        assert_eq!(p.along(Dir::Horizontal), 10);
        assert_eq!(p.along(Dir::Vertical), 20);
        assert_eq!(p.across(Dir::Horizontal), 20);
        assert_eq!(p.across(Dir::Vertical), 10);
    }

    #[test]
    fn transpose_is_involutive() {
        let p = Point::new(3, -8);
        assert_eq!(p.transposed().transposed(), p);
        assert_eq!(p.transposed(), Point::new(-8, 3));
    }

    #[test]
    fn display_formats_as_tuple() {
        assert_eq!(Point::new(1, -2).to_string(), "(1, -2)");
    }
}
