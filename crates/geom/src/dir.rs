/// Preferred routing direction of a layer, or the orientation of a wire.
///
/// The PIL-Fill algorithms are written for horizontally routed layers
/// (active lines run left-to-right, slack columns stack vertically); a
/// vertically routed layer is handled by transposing the geometry, running
/// the horizontal algorithm, and transposing back.
///
/// # Examples
///
/// ```
/// use pilfill_geom::Dir;
///
/// assert_eq!(Dir::Horizontal.perpendicular(), Dir::Vertical);
/// assert_eq!(Dir::Vertical.perpendicular().perpendicular(), Dir::Vertical);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Wires run along the x axis.
    Horizontal,
    /// Wires run along the y axis.
    Vertical,
}

impl Dir {
    /// The direction rotated by 90 degrees.
    #[must_use]
    pub const fn perpendicular(self) -> Self {
        match self {
            Dir::Horizontal => Dir::Vertical,
            Dir::Vertical => Dir::Horizontal,
        }
    }

    /// `true` for [`Dir::Horizontal`].
    pub const fn is_horizontal(self) -> bool {
        matches!(self, Dir::Horizontal)
    }

    /// `true` for [`Dir::Vertical`].
    pub const fn is_vertical(self) -> bool {
        matches!(self, Dir::Vertical)
    }
}

impl std::fmt::Display for Dir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Dir::Horizontal => "horizontal",
            Dir::Vertical => "vertical",
        })
    }
}

impl std::str::FromStr for Dir {
    type Err = ParseDirError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "horizontal" | "h" | "H" => Ok(Dir::Horizontal),
            "vertical" | "v" | "V" => Ok(Dir::Vertical),
            _ => Err(ParseDirError),
        }
    }
}

/// Error returned when parsing a [`Dir`] from an unrecognized string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseDirError;

impl std::fmt::Display for ParseDirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("direction must be `horizontal`/`h` or `vertical`/`v`")
    }
}

impl std::error::Error for ParseDirError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perpendicular_swaps() {
        assert_eq!(Dir::Horizontal.perpendicular(), Dir::Vertical);
        assert_eq!(Dir::Vertical.perpendicular(), Dir::Horizontal);
    }

    #[test]
    fn predicates() {
        assert!(Dir::Horizontal.is_horizontal());
        assert!(!Dir::Horizontal.is_vertical());
        assert!(Dir::Vertical.is_vertical());
    }

    #[test]
    fn parse_round_trip() {
        for d in [Dir::Horizontal, Dir::Vertical] {
            let parsed: Dir = d.to_string().parse().expect("round trip");
            assert_eq!(parsed, d);
        }
        assert_eq!("h".parse::<Dir>(), Ok(Dir::Horizontal));
        assert_eq!("V".parse::<Dir>(), Ok(Dir::Vertical));
        assert!("diagonal".parse::<Dir>().is_err());
    }
}
