use crate::Coord;

/// A half-open 1-D interval `[lo, hi)` in database units.
///
/// Half-open intervals compose cleanly when tiling a line: adjacent
/// intervals share an endpoint but never a unit of length, so lengths add
/// up exactly. An interval with `lo >= hi` is *empty*.
///
/// # Examples
///
/// ```
/// use pilfill_geom::Interval;
///
/// let a = Interval::new(0, 10);
/// let b = Interval::new(6, 14);
/// assert_eq!(a.intersection(b), Interval::new(6, 10));
/// assert_eq!(a.intersection(b).len(), 4);
/// assert!(Interval::new(10, 14).intersection(a).is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Interval {
    /// Inclusive lower end.
    pub lo: Coord,
    /// Exclusive upper end.
    pub hi: Coord,
}

impl Interval {
    /// Creates the interval `[lo, hi)`. `lo > hi` is allowed and yields an
    /// empty interval.
    pub const fn new(lo: Coord, hi: Coord) -> Self {
        Self { lo, hi }
    }

    /// The canonical empty interval `[0, 0)`.
    pub const fn empty() -> Self {
        Self { lo: 0, hi: 0 }
    }

    /// Length of the interval; zero if empty.
    pub fn len(&self) -> Coord {
        (self.hi - self.lo).max(0)
    }

    /// `true` if the interval contains no points.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// `true` if `x` lies in `[lo, hi)`.
    pub fn contains(&self, x: Coord) -> bool {
        self.lo <= x && x < self.hi
    }

    /// `true` if `other` is fully inside `self` (empty intervals are inside
    /// everything).
    pub fn contains_interval(&self, other: Self) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// The overlap of the two intervals (possibly empty).
    #[must_use]
    pub fn intersection(&self, other: Self) -> Self {
        Self {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// `true` if the two intervals share at least one point.
    pub fn overlaps(&self, other: Self) -> bool {
        !self.intersection(other).is_empty()
    }

    /// The smallest interval containing both (the *hull*; for disjoint
    /// inputs this also covers the gap between them).
    #[must_use]
    pub fn hull(&self, other: Self) -> Self {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return *self;
        }
        Self {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Shrinks the interval by `margin` on both sides (possibly emptying it).
    #[must_use]
    pub fn shrunk(&self, margin: Coord) -> Self {
        Self {
            lo: self.lo + margin,
            hi: self.hi - margin,
        }
    }

    /// Grows the interval by `margin` on both sides.
    #[must_use]
    pub fn grown(&self, margin: Coord) -> Self {
        self.shrunk(-margin)
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_empty() {
        assert_eq!(Interval::new(2, 7).len(), 5);
        assert_eq!(Interval::new(7, 2).len(), 0);
        assert!(Interval::new(7, 2).is_empty());
        assert!(Interval::empty().is_empty());
        assert!(!Interval::new(0, 1).is_empty());
    }

    #[test]
    fn contains_respects_half_openness() {
        let iv = Interval::new(3, 6);
        assert!(!iv.contains(2));
        assert!(iv.contains(3));
        assert!(iv.contains(5));
        assert!(!iv.contains(6));
    }

    #[test]
    fn intersection_is_commutative_and_clamped() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 20);
        assert_eq!(a.intersection(b), b.intersection(a));
        assert_eq!(a.intersection(b), Interval::new(5, 10));
        assert!(a.intersection(Interval::new(10, 12)).is_empty());
    }

    #[test]
    fn overlaps_excludes_touching() {
        let a = Interval::new(0, 10);
        assert!(a.overlaps(Interval::new(9, 11)));
        assert!(!a.overlaps(Interval::new(10, 11)));
    }

    #[test]
    fn hull_covers_both_and_ignores_empties() {
        let a = Interval::new(0, 2);
        let b = Interval::new(8, 9);
        assert_eq!(a.hull(b), Interval::new(0, 9));
        assert_eq!(a.hull(Interval::empty()), a);
        assert_eq!(Interval::empty().hull(b), b);
    }

    #[test]
    fn shrink_and_grow_are_inverse_when_nonempty() {
        let a = Interval::new(10, 30);
        assert_eq!(a.shrunk(5), Interval::new(15, 25));
        assert_eq!(a.shrunk(5).grown(5), a);
        assert!(a.shrunk(12).is_empty());
    }

    #[test]
    fn contains_interval_cases() {
        let a = Interval::new(0, 10);
        assert!(a.contains_interval(Interval::new(0, 10)));
        assert!(a.contains_interval(Interval::new(3, 7)));
        assert!(!a.contains_interval(Interval::new(-1, 4)));
        assert!(a.contains_interval(Interval::empty()));
    }
}
