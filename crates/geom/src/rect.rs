use crate::{Area, Coord, Dir, Interval, Point};

/// An axis-aligned rectangle with half-open extents `[left, right) x
/// [bottom, top)`.
///
/// A rectangle with `left >= right` or `bottom >= top` is *empty*; all
/// operations treat empty rectangles consistently (zero area, no overlap).
///
/// # Examples
///
/// ```
/// use pilfill_geom::{Rect, Point};
///
/// let r = Rect::new(0, 0, 4, 3);
/// assert_eq!(r.area(), 12);
/// assert!(r.contains(Point::new(3, 2)));
/// assert!(!r.contains(Point::new(4, 2))); // right edge is exclusive
///
/// let clipped = r.intersection(&Rect::new(2, 1, 10, 10));
/// assert_eq!(clipped, Rect::new(2, 1, 4, 3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Inclusive left edge.
    pub left: Coord,
    /// Inclusive bottom edge.
    pub bottom: Coord,
    /// Exclusive right edge.
    pub right: Coord,
    /// Exclusive top edge.
    pub top: Coord,
}

impl Rect {
    /// Creates the rectangle `[left, right) x [bottom, top)`.
    pub const fn new(left: Coord, bottom: Coord, right: Coord, top: Coord) -> Self {
        Self {
            left,
            bottom,
            right,
            top,
        }
    }

    /// Creates a rectangle from two corner points (any opposite pair).
    pub fn from_corners(a: Point, b: Point) -> Self {
        Self {
            left: a.x.min(b.x),
            bottom: a.y.min(b.y),
            right: a.x.max(b.x),
            top: a.y.max(b.y),
        }
    }

    /// Creates a rectangle from its x and y extents.
    pub const fn from_spans(x: Interval, y: Interval) -> Self {
        Self {
            left: x.lo,
            bottom: y.lo,
            right: x.hi,
            top: y.hi,
        }
    }

    /// The canonical empty rectangle.
    pub const fn empty() -> Self {
        Self {
            left: 0,
            bottom: 0,
            right: 0,
            top: 0,
        }
    }

    /// Horizontal extent as an interval.
    pub const fn x_span(&self) -> Interval {
        Interval::new(self.left, self.right)
    }

    /// Vertical extent as an interval.
    pub const fn y_span(&self) -> Interval {
        Interval::new(self.bottom, self.top)
    }

    /// Extent along `dir` (`x` for horizontal).
    pub fn span(&self, dir: Dir) -> Interval {
        match dir {
            Dir::Horizontal => self.x_span(),
            Dir::Vertical => self.y_span(),
        }
    }

    /// Width (zero if empty).
    pub fn width(&self) -> Coord {
        (self.right - self.left).max(0)
    }

    /// Height (zero if empty).
    pub fn height(&self) -> Coord {
        (self.top - self.bottom).max(0)
    }

    /// Area (zero if empty). Debug builds assert the product fits an
    /// [`Area`]; use [`Rect::checked_area`] for untrusted die-scale rects.
    pub fn area(&self) -> Area {
        crate::units::area(self.width(), self.height())
    }

    /// Area as an exact integer, or `None` when `width x height`
    /// overflows `i64` (possible for adversarial rects near `i64::MAX`).
    pub fn checked_area(&self) -> Option<Area> {
        crate::units::checked_area(self.width(), self.height())
    }

    /// `true` if the rectangle covers no points.
    pub fn is_empty(&self) -> bool {
        self.left >= self.right || self.bottom >= self.top
    }

    /// Bottom-left corner.
    pub const fn lower_left(&self) -> Point {
        Point::new(self.left, self.bottom)
    }

    /// Top-right corner (exclusive).
    pub const fn upper_right(&self) -> Point {
        Point::new(self.right, self.top)
    }

    /// Center point, rounded towards the lower-left.
    pub fn center(&self) -> Point {
        Point::new(
            self.left + (self.right - self.left) / 2,
            self.bottom + (self.top - self.bottom) / 2,
        )
    }

    /// `true` if `p` lies inside (right/top edges exclusive).
    pub fn contains(&self, p: Point) -> bool {
        self.x_span().contains(p.x) && self.y_span().contains(p.y)
    }

    /// `true` if `other` lies fully inside `self` (empty rects are inside
    /// everything).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (self.left <= other.left
                && other.right <= self.right
                && self.bottom <= other.bottom
                && other.top <= self.top)
    }

    /// The overlap of the two rectangles (possibly empty).
    #[must_use]
    pub fn intersection(&self, other: &Rect) -> Rect {
        Rect {
            left: self.left.max(other.left),
            bottom: self.bottom.max(other.bottom),
            right: self.right.min(other.right),
            top: self.top.min(other.top),
        }
    }

    /// `true` if the rectangles share interior points.
    pub fn overlaps(&self, other: &Rect) -> bool {
        !self.intersection(other).is_empty()
    }

    /// The smallest rectangle containing both.
    #[must_use]
    pub fn hull(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            left: self.left.min(other.left),
            bottom: self.bottom.min(other.bottom),
            right: self.right.max(other.right),
            top: self.top.max(other.top),
        }
    }

    /// The rectangle translated by `(dx, dy)`.
    #[must_use]
    pub fn translated(&self, dx: Coord, dy: Coord) -> Rect {
        Rect {
            left: self.left + dx,
            bottom: self.bottom + dy,
            right: self.right + dx,
            top: self.top + dy,
        }
    }

    /// The rectangle shrunk by `margin` on all four sides.
    #[must_use]
    pub fn shrunk(&self, margin: Coord) -> Rect {
        Rect {
            left: self.left + margin,
            bottom: self.bottom + margin,
            right: self.right - margin,
            top: self.top - margin,
        }
    }

    /// The rectangle grown by `margin` on all four sides.
    #[must_use]
    pub fn grown(&self, margin: Coord) -> Rect {
        self.shrunk(-margin)
    }

    /// The rectangle reflected about the diagonal (x/y swapped). Used to run
    /// horizontal algorithms on vertically routed layers.
    #[must_use]
    pub fn transposed(&self) -> Rect {
        Rect {
            left: self.bottom,
            bottom: self.left,
            right: self.top,
            top: self.right,
        }
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}, {}) x [{}, {})",
            self.left, self.right, self.bottom, self.top
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_and_area() {
        let r = Rect::new(1, 2, 5, 10);
        assert_eq!(r.width(), 4);
        assert_eq!(r.height(), 8);
        assert_eq!(r.area(), 32);
        assert!(!r.is_empty());
        assert!(Rect::new(5, 0, 5, 10).is_empty());
        assert_eq!(Rect::new(5, 0, 3, 10).area(), 0);
    }

    #[test]
    fn checked_area_at_i64_boundary_die_sizes() {
        // A full-span die: width * height overflows i64.
        let huge = Rect::new(i64::MIN / 2, i64::MIN / 2, i64::MAX / 2, i64::MAX / 2);
        assert_eq!(huge.checked_area(), None);
        // A degenerate sliver at the boundary still has an exact area.
        let sliver = Rect::new(0, 0, i64::MAX, 1);
        assert_eq!(sliver.checked_area(), Some(i64::MAX));
        // The largest square that fits: floor(sqrt(i64::MAX)) = 3_037_000_499.
        let side = 3_037_000_499i64;
        let square = Rect::new(0, 0, side, side);
        assert_eq!(square.checked_area(), Some(side * side));
        let over = Rect::new(0, 0, side + 1, side + 1);
        assert_eq!(over.checked_area(), None);
    }

    #[test]
    fn from_corners_normalizes() {
        let r = Rect::from_corners(Point::new(5, 1), Point::new(2, 9));
        assert_eq!(r, Rect::new(2, 1, 5, 9));
    }

    #[test]
    fn spans_round_trip() {
        let r = Rect::new(1, 2, 3, 4);
        assert_eq!(Rect::from_spans(r.x_span(), r.y_span()), r);
        assert_eq!(r.span(Dir::Horizontal), Interval::new(1, 3));
        assert_eq!(r.span(Dir::Vertical), Interval::new(2, 4));
    }

    #[test]
    fn containment_half_open() {
        let r = Rect::new(0, 0, 4, 4);
        assert!(r.contains(Point::new(0, 0)));
        assert!(!r.contains(Point::new(4, 0)));
        assert!(!r.contains(Point::new(0, 4)));
        assert!(r.contains_rect(&Rect::new(1, 1, 3, 3)));
        assert!(r.contains_rect(&r));
        assert!(!r.contains_rect(&Rect::new(1, 1, 5, 3)));
        assert!(r.contains_rect(&Rect::empty()));
    }

    #[test]
    fn intersection_commutative_and_area_bounded() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        assert_eq!(a.intersection(&b), b.intersection(&a));
        assert_eq!(a.intersection(&b), Rect::new(5, 5, 10, 10));
        assert!(a.intersection(&b).area() <= a.area().min(b.area()));
        assert!(!a.overlaps(&Rect::new(10, 0, 20, 10))); // touching edges
    }

    #[test]
    fn hull_contains_both() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(5, 7, 6, 9);
        let h = a.hull(&b);
        assert!(h.contains_rect(&a));
        assert!(h.contains_rect(&b));
        assert_eq!(a.hull(&Rect::empty()), a);
    }

    #[test]
    fn translate_shrink_grow() {
        let r = Rect::new(0, 0, 10, 10);
        assert_eq!(r.translated(3, -2), Rect::new(3, -2, 13, 8));
        assert_eq!(r.shrunk(2), Rect::new(2, 2, 8, 8));
        assert_eq!(r.shrunk(2).grown(2), r);
        assert!(r.shrunk(6).is_empty());
    }

    #[test]
    fn transpose_involutive_and_area_preserving() {
        let r = Rect::new(1, 2, 7, 4);
        assert_eq!(r.transposed().transposed(), r);
        assert_eq!(r.transposed().area(), r.area());
        assert_eq!(r.transposed(), Rect::new(2, 1, 4, 7));
    }

    #[test]
    fn center_of_odd_rect_rounds_down() {
        assert_eq!(Rect::new(0, 0, 5, 3).center(), Point::new(2, 1));
    }
}
