use crate::{Coord, Interval, Rect};

/// Index of a cell in a [`Grid`]: `(ix, iy)` counted from the lower-left.
pub type CellIndex = (usize, usize);

/// A uniform rectangular grid over a bounding rectangle.
///
/// Grids model both the *site* grid (one cell per candidate fill-feature
/// location) and the *tile* grid of the fixed r-dissection. The last row and
/// column may be partial if the bounds are not an exact multiple of the
/// pitch; partial cells are clipped to the bounds.
///
/// # Examples
///
/// ```
/// use pilfill_geom::{Grid, Rect};
///
/// let g = Grid::new(Rect::new(0, 0, 1000, 600), 250, 200);
/// assert_eq!((g.nx(), g.ny()), (4, 3));
/// assert_eq!(g.cell_rect((3, 2)), Rect::new(750, 400, 1000, 600));
/// assert_eq!(g.cell_at(260, 10), Some((1, 0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    bounds: Rect,
    pitch_x: Coord,
    pitch_y: Coord,
    nx: usize,
    ny: usize,
}

impl Grid {
    /// Creates a grid covering `bounds` with the given cell pitches.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or either pitch is non-positive.
    pub fn new(bounds: Rect, pitch_x: Coord, pitch_y: Coord) -> Self {
        assert!(!bounds.is_empty(), "grid bounds must be non-empty");
        assert!(
            pitch_x > 0 && pitch_y > 0,
            "grid pitches must be positive (got {pitch_x}, {pitch_y})"
        );
        let nx = Self::div_ceil(bounds.width(), pitch_x);
        let ny = Self::div_ceil(bounds.height(), pitch_y);
        Self {
            bounds,
            pitch_x,
            pitch_y,
            nx,
            ny,
        }
    }

    /// Creates a square-celled grid.
    pub fn square(bounds: Rect, pitch: Coord) -> Self {
        Self::new(bounds, pitch, pitch)
    }

    fn div_ceil(a: Coord, b: Coord) -> usize {
        crate::units::index((a + b - 1) / b)
    }

    /// The covered bounds.
    pub const fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Horizontal cell pitch.
    pub const fn pitch_x(&self) -> Coord {
        self.pitch_x
    }

    /// Vertical cell pitch.
    pub const fn pitch_y(&self) -> Coord {
        self.pitch_y
    }

    /// Number of columns.
    pub const fn nx(&self) -> usize {
        self.nx
    }

    /// Number of rows.
    pub const fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of cells.
    pub const fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// `true` if the grid has no cells (never true for a validly constructed
    /// grid).
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The rectangle of cell `(ix, iy)`, clipped to the grid bounds.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn cell_rect(&self, (ix, iy): CellIndex) -> Rect {
        assert!(ix < self.nx && iy < self.ny, "cell index out of range");
        let left = self.bounds.left + self.pitch_x * crate::units::coord(ix);
        let bottom = self.bounds.bottom + self.pitch_y * crate::units::coord(iy);
        Rect {
            left,
            bottom,
            right: (left + self.pitch_x).min(self.bounds.right),
            top: (bottom + self.pitch_y).min(self.bounds.top),
        }
    }

    /// The cell containing point `(x, y)`, or `None` if outside the bounds.
    pub fn cell_at(&self, x: Coord, y: Coord) -> Option<CellIndex> {
        if !self.bounds.contains(crate::Point::new(x, y)) {
            return None;
        }
        let ix = crate::units::index((x - self.bounds.left) / self.pitch_x);
        let iy = crate::units::index((y - self.bounds.bottom) / self.pitch_y);
        Some((ix.min(self.nx - 1), iy.min(self.ny - 1)))
    }

    /// The inclusive range of column indices whose cells overlap `span`
    /// (x interval), or `None` if no overlap.
    pub fn columns_overlapping(&self, span: Interval) -> Option<(usize, usize)> {
        self.axis_range(span, self.bounds.x_span(), self.pitch_x, self.nx)
    }

    /// The inclusive range of row indices whose cells overlap `span`
    /// (y interval), or `None` if no overlap.
    pub fn rows_overlapping(&self, span: Interval) -> Option<(usize, usize)> {
        self.axis_range(span, self.bounds.y_span(), self.pitch_y, self.ny)
    }

    fn axis_range(
        &self,
        span: Interval,
        axis: Interval,
        pitch: Coord,
        n: usize,
    ) -> Option<(usize, usize)> {
        let clipped = span.intersection(axis);
        if clipped.is_empty() {
            return None;
        }
        let lo = crate::units::index((clipped.lo - axis.lo) / pitch);
        let hi = crate::units::index((clipped.hi - 1 - axis.lo) / pitch).min(n - 1);
        Some((lo, hi))
    }

    /// Iterates indices of all cells overlapping `rect` (row-major order).
    pub fn cells_overlapping<'a>(&'a self, rect: &Rect) -> impl Iterator<Item = CellIndex> + 'a {
        let cols = self.columns_overlapping(rect.x_span());
        let rows = self.rows_overlapping(rect.y_span());
        let ((cx0, cx1), (cy0, cy1)) = match (cols, rows) {
            (Some(c), Some(r)) => (c, r),
            // Empty iterator via an impossible range.
            _ => ((1, 0), (1, 0)),
        };
        (cy0..=cy1.max(cy0))
            .flat_map(move |iy| (cx0..=cx1.max(cx0)).map(move |ix| (ix, iy)))
            .filter(move |_| cols.is_some() && rows.is_some())
    }

    /// Iterates all cell indices in row-major order.
    pub fn indices(&self) -> impl Iterator<Item = CellIndex> + '_ {
        (0..self.ny).flat_map(move |iy| (0..self.nx).map(move |ix| (ix, iy)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn grid() -> Grid {
        Grid::new(Rect::new(0, 0, 1000, 600), 250, 200)
    }

    #[test]
    fn dimensions_exact_fit() {
        let g = grid();
        assert_eq!(g.nx(), 4);
        assert_eq!(g.ny(), 3);
        assert_eq!(g.len(), 12);
        assert!(!g.is_empty());
    }

    #[test]
    fn dimensions_partial_last_cell() {
        let g = Grid::square(Rect::new(0, 0, 1001, 999), 500);
        assert_eq!((g.nx(), g.ny()), (3, 2));
        // Last column clipped to bounds.
        assert_eq!(g.cell_rect((2, 1)), Rect::new(1000, 500, 1001, 999));
    }

    #[test]
    #[should_panic(expected = "pitches must be positive")]
    fn zero_pitch_panics() {
        let _ = Grid::new(Rect::new(0, 0, 10, 10), 0, 5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_bounds_panics() {
        let _ = Grid::square(Rect::empty(), 5);
    }

    #[test]
    fn cell_rects_tile_the_bounds() {
        let g = grid();
        let total: i64 = g.indices().map(|c| g.cell_rect(c).area()).sum();
        assert_eq!(total, g.bounds().area());
        // All cells inside the bounds, pairwise non-overlapping.
        let cells: Vec<Rect> = g.indices().map(|c| g.cell_rect(c)).collect();
        for (i, a) in cells.iter().enumerate() {
            assert!(g.bounds().contains_rect(a));
            for b in &cells[i + 1..] {
                assert!(!a.overlaps(b));
            }
        }
    }

    #[test]
    fn cell_at_matches_cell_rect() {
        let g = grid();
        for c in g.indices() {
            let r = g.cell_rect(c);
            let inside = Point::new(r.left, r.bottom);
            assert_eq!(g.cell_at(inside.x, inside.y), Some(c));
        }
        assert_eq!(g.cell_at(-1, 0), None);
        assert_eq!(g.cell_at(1000, 0), None); // right edge exclusive
    }

    #[test]
    fn cells_overlapping_matches_brute_force() {
        let g = grid();
        let query = Rect::new(240, 190, 760, 210);
        let fast: Vec<CellIndex> = g.cells_overlapping(&query).collect();
        let brute: Vec<CellIndex> = g
            .indices()
            .filter(|&c| g.cell_rect(c).overlaps(&query))
            .collect();
        let mut fast_sorted = fast.clone();
        fast_sorted.sort_unstable();
        let mut brute_sorted = brute;
        brute_sorted.sort_unstable();
        assert_eq!(fast_sorted, brute_sorted);
        assert_eq!(fast.len(), 8); // 4 columns x 2 rows
    }

    #[test]
    fn cells_overlapping_disjoint_rect_is_empty() {
        let g = grid();
        assert_eq!(
            g.cells_overlapping(&Rect::new(2000, 0, 2100, 100)).count(),
            0
        );
        assert_eq!(g.cells_overlapping(&Rect::empty()).count(), 0);
    }

    #[test]
    fn row_and_column_ranges() {
        let g = grid();
        assert_eq!(g.columns_overlapping(Interval::new(0, 250)), Some((0, 0)));
        assert_eq!(g.columns_overlapping(Interval::new(0, 251)), Some((0, 1)));
        assert_eq!(
            g.columns_overlapping(Interval::new(999, 1500)),
            Some((3, 3))
        );
        assert_eq!(g.columns_overlapping(Interval::new(1000, 1500)), None);
        assert_eq!(g.rows_overlapping(Interval::new(599, 600)), Some((2, 2)));
    }
}
