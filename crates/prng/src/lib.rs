//! Deterministic pseudo-random numbers without external dependencies.
//!
//! The workspace previously depended on the `rand` crate, which cannot be
//! fetched in offline build environments. This crate replaces it with two
//! small, well-known generators:
//!
//! - [`SplitMix64`]: a 64-bit mixer used to expand a single `u64` seed into
//!   generator state (the standard seeding procedure recommended by the
//!   xoshiro authors);
//! - [`Xoshiro256PlusPlus`]: the xoshiro256++ generator (Blackman &
//!   Vigna), a fast all-purpose generator with 256 bits of state.
//!
//! The public surface mirrors the subset of `rand` the workspace uses, so
//! call sites only swap the crate path: [`StdRng`], [`SeedableRng`],
//! [`Rng`] (with `gen_range`, `gen_bool`, `gen`) and a `rngs` module alias.
//! Streams are fully determined by the seed: the same seed always yields
//! the same sequence, on every platform, forever — a property the
//! experiment tables rely on.

/// SplitMix64: Sebastiano Vigna's 64-bit mixing generator. Primarily used
/// here to derive xoshiro state from a single `u64` seed, but usable as a
/// (weaker) standalone generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a raw seed.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (David Blackman and Sebastiano Vigna, public domain
/// reference implementation), seeded through [`SplitMix64`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Expands `seed` into 256 bits of state via SplitMix64.
    pub fn from_seed_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        let s = [
            mix.next_u64(),
            mix.next_u64(),
            mix.next_u64(),
            mix.next_u64(),
        ];
        // SplitMix64 output is never all-zero across four draws for any
        // seed, so the state is always valid.
        Self { s }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Core generator interface: a source of 64-bit words.
pub trait RngCore {
    /// The next 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// The next 32-bit output (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        // The shift leaves at most 32 significant bits. pilfill: allow(as-cast)
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a `u64` seed (mirrors `rand::SeedableRng`'s
/// `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods (mirrors the used subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b` for integers, `a..b`
    /// for floats).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        standard_f64(self.next_u64()) < p
    }

    /// A sample from the "standard" distribution of `T`: uniform over the
    /// full domain for integers/bool, uniform in `[0, 1)` for floats.
    fn gen<T>(&mut self) -> T
    where
        T: Standard,
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<T: RngCore> Rng for T {}

/// `f64` in `[0, 1)` from the top 53 bits of a draw.
fn standard_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
}

/// Unbiased uniform integer in `[0, span)` via Lemire's multiply-shift
/// method with rejection.
///
/// `span == 0` means the full 64-bit domain.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low < span {
            // Reject the biased low region.
            let threshold = span.wrapping_neg() % span;
            if low < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

/// Types with a "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        standard_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / ((1u64 << 24) as f32))
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly (see [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                // hi - lo + 1 wraps to 0 exactly for the full domain,
                // which uniform_u64 handles.
                let span = (hi as u64)
                    .wrapping_sub(lo as u64)
                    .wrapping_add(1);
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = standard_f64(rng.next_u64());
        // Clamp guards the end-exclusive contract against round-off.
        (self.start + u * (self.end - self.start))
            .min(f64::from_bits(self.end.to_bits().wrapping_sub(1)).max(self.start))
    }
}

/// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
///
/// Named `StdRng` so call sites keep the familiar `rand` spelling; the
/// stream is *not* the `rand` crate's (`rand`'s `StdRng` is explicitly not
/// reproducible across versions anyway — this one is).
///
/// # Examples
///
/// ```
/// use pilfill_prng::{Rng, SeedableRng, StdRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let a: u64 = rng.gen_range(0..100);
/// assert!(a < 100);
/// let again: u64 = StdRng::seed_from_u64(7).gen_range(0..100);
/// assert_eq!(a, again);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng(Xoshiro256PlusPlus);

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        Self(Xoshiro256PlusPlus::from_seed_u64(state))
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        Xoshiro256PlusPlus::next_u64(self)
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(state: u64) -> Self {
        Self::from_seed_u64(state)
    }
}

/// `rand`-style module alias so `use pilfill_prng::rngs::StdRng` works.
pub mod rngs {
    pub use crate::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567 (from the public reference
        // implementation).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256PlusPlus::from_seed_u64(42);
        let mut b = Xoshiro256PlusPlus::from_seed_u64(42);
        let mut c = Xoshiro256PlusPlus::from_seed_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-17..23);
            assert!((-17..23).contains(&v));
            let u: usize = rng.gen_range(5..=9);
            assert!((5..=9).contains(&u));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            // Expect 10_000 per bucket; allow 10% slop.
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn extreme_integer_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let v: u64 = rng.gen_range(0..=u64::MAX);
        let _ = v; // full domain must not panic or loop
        let w: i64 = rng.gen_range(i64::MIN..=i64::MAX);
        let _ = w;
        let x: i64 = rng.gen_range(i64::MIN..0);
        assert!(x < 0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: u32 = rng.gen_range(5..5);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
        assert!(!StdRng::seed_from_u64(1).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(1).gen_bool(1.0));
    }

    #[test]
    fn standard_f64_is_half_open_unit() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = StdRng::seed_from_u64(77);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
