//! Minimal dependency-free JSON emission: correct string escaping and
//! comma/nesting bookkeeping, nothing else. The workspace bans external
//! crates, so report files are written through this instead of serde.

/// Escapes `s` for inclusion in a JSON string literal (without the
/// surrounding quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out
}

/// An append-only JSON writer that tracks nesting and inserts commas.
///
/// # Examples
///
/// ```
/// use pilfill_diag::JsonWriter;
///
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.field_str("tool", "pilfill-audit");
/// w.key("items");
/// w.begin_array();
/// w.value_u64(1);
/// w.value_u64(2);
/// w.end_array();
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"tool":"pilfill-audit","items":[1,2]}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    // One entry per open container: `true` once the container has a child
    // (so the next child is comma-prefixed).
    stack: Vec<bool>,
    // A key was just written; the next value must not be comma-prefixed.
    pending_key: bool,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn before_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(has_child) = self.stack.last_mut() {
            if *has_child {
                self.buf.push(',');
            }
            *has_child = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.before_value();
        self.buf.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) {
        self.stack.pop();
        self.buf.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.before_value();
        self.buf.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) {
        self.stack.pop();
        self.buf.push(']');
    }

    /// Writes an object key; the next `value_*`/`begin_*` call is its value.
    pub fn key(&mut self, key: &str) {
        self.before_value();
        self.buf.push('"');
        self.buf.push_str(&json_escape(key));
        self.buf.push_str("\":");
        self.pending_key = true;
    }

    /// Writes a string value.
    pub fn value_str(&mut self, v: &str) {
        self.before_value();
        self.buf.push('"');
        self.buf.push_str(&json_escape(v));
        self.buf.push('"');
    }

    /// Writes an unsigned integer value.
    pub fn value_u64(&mut self, v: u64) {
        self.before_value();
        self.buf.push_str(&v.to_string());
    }

    /// Writes a boolean value.
    pub fn value_bool(&mut self, v: bool) {
        self.before_value();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// `key` + string value in one call.
    pub fn field_str(&mut self, key: &str, v: &str) {
        self.key(key);
        self.value_str(v);
    }

    /// `key` + unsigned integer value in one call.
    pub fn field_u64(&mut self, key: &str, v: u64) {
        self.key(key);
        self.value_u64(v);
    }

    /// `key` + boolean value in one call.
    pub fn field_bool(&mut self, key: &str, v: bool) {
        self.key(key);
        self.value_bool(v);
    }

    /// Consumes the writer, returning the accumulated JSON text.
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn nested_containers_get_commas_right() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("a", "1");
        w.key("b");
        w.begin_array();
        w.begin_object();
        w.field_u64("x", 2);
        w.end_object();
        w.value_bool(false);
        w.end_array();
        w.field_u64("c", 3);
        w.end_object();
        assert_eq!(w.finish(), r#"{"a":"1","b":[{"x":2},false],"c":3}"#);
    }

    #[test]
    fn empty_containers_render() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("empty");
        w.begin_array();
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), r#"{"empty":[]}"#);
    }
}
