//! # pilfill-diag
//!
//! The diagnostic model shared by PIL-Fill's signoff-style checkers: the
//! `xtask` repo linter and the `pilfill verify` DRC reporter both emit
//! [`Diagnostic`]s and render them through this crate, so tooling output
//! is uniform (`file:line: severity[rule]: message`) and machine-readable
//! (a hand-rolled, dependency-free JSON report).
//!
//! # Examples
//!
//! ```
//! use pilfill_diag::{Diagnostic, Severity};
//!
//! let d = Diagnostic::new(Severity::Error, "unwrap", "lib.rs", 12, "`.unwrap()` in library code");
//! assert_eq!(d.render_text(), "lib.rs:12: error[unwrap]: `.unwrap()` in library code");
//! ```

mod json;

pub use json::{json_escape, JsonWriter};

/// How serious a diagnostic is.
///
/// `Error`s fail the run that produced them; `Warning`s fail only under a
/// deny-warnings policy; `Note`s are informational.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never fails a run.
    Note,
    /// Fails only under a deny-warnings policy.
    Warning,
    /// Always fails the producing run.
    Error,
}

impl Severity {
    /// Lower-case display name (`"error"`, `"warning"`, `"note"`).
    pub const fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding from a checker: a rule-tagged message anchored to a
/// `file:line` location.
///
/// `line` is 1-based; line 0 means "whole file" (used for file-scope
/// findings such as a DRC report on a GDS stream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// Stable kebab-case rule identifier (e.g. `unwrap`, `drc-off-die`).
    pub rule: String,
    /// Path the finding anchors to (repo-relative for lint findings).
    pub file: String,
    /// 1-based line number; 0 for file-scope findings.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(
        severity: Severity,
        rule: impl Into<String>,
        file: impl Into<String>,
        line: u32,
        message: impl Into<String>,
    ) -> Self {
        Self {
            severity,
            rule: rule.into(),
            file: file.into(),
            line,
            message: message.into(),
        }
    }

    /// Renders the canonical single-line text form:
    /// `file:line: severity[rule]: message` (the `:line` part is omitted
    /// for file-scope diagnostics).
    pub fn render_text(&self) -> String {
        if self.line == 0 {
            format!(
                "{}: {}[{}]: {}",
                self.file, self.severity, self.rule, self.message
            )
        } else {
            format!(
                "{}:{}: {}[{}]: {}",
                self.file, self.line, self.severity, self.rule, self.message
            )
        }
    }

    /// Writes this diagnostic as a JSON object onto `w`.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("severity", self.severity.name());
        w.field_str("rule", &self.rule);
        w.field_str("file", &self.file);
        w.field_u64("line", u64::from(self.line));
        w.field_str("message", &self.message);
        w.end_object();
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render_text())
    }
}

/// Per-rule counts over a batch of diagnostics, ordered by first
/// appearance: the summary block both checkers print after their findings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleCounts {
    counts: Vec<(String, usize)>,
}

impl RuleCounts {
    /// Tallies `diagnostics` by rule.
    pub fn tally(diagnostics: &[Diagnostic]) -> Self {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for d in diagnostics {
            match counts.iter_mut().find(|(rule, _)| *rule == d.rule) {
                Some((_, n)) => *n += 1,
                None => counts.push((d.rule.clone(), 1)),
            }
        }
        Self { counts }
    }

    /// `(rule, count)` pairs in first-appearance order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize)> {
        self.counts.iter().map(|(r, n)| (r.as_str(), *n))
    }

    /// Total finding count.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|(_, n)| n).sum()
    }

    /// `true` when no diagnostics were tallied.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Renders the per-rule summary table, one `  <rule>  <count>` line per
    /// rule, aligned on the widest rule name.
    pub fn render_text(&self) -> String {
        let width = self.counts.iter().map(|(r, _)| r.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (rule, n) in &self.counts {
            out.push_str(&format!("  {rule:width$}  {n}\n"));
        }
        out
    }

    /// Writes the counts as a JSON object (`{"rule": count, ...}`).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        for (rule, n) in &self.counts {
            w.field_u64(rule, *n as u64);
        }
        w.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_includes_location_and_rule() {
        let d = Diagnostic::new(Severity::Warning, "missing-docs", "a/b.rs", 7, "no docs");
        assert_eq!(d.render_text(), "a/b.rs:7: warning[missing-docs]: no docs");
        assert_eq!(d.to_string(), d.render_text());
    }

    #[test]
    fn file_scope_diagnostic_omits_line() {
        let d = Diagnostic::new(
            Severity::Error,
            "drc-off-die",
            "chip.gds",
            0,
            "fill off die",
        );
        assert_eq!(
            d.render_text(),
            "chip.gds: error[drc-off-die]: fill off die"
        );
    }

    #[test]
    fn severity_ordering_and_names() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn rule_counts_tally_in_first_appearance_order() {
        let diags = vec![
            Diagnostic::new(Severity::Error, "b", "f", 1, "m"),
            Diagnostic::new(Severity::Error, "a", "f", 2, "m"),
            Diagnostic::new(Severity::Error, "b", "f", 3, "m"),
        ];
        let counts = RuleCounts::tally(&diags);
        let pairs: Vec<_> = counts.iter().collect();
        assert_eq!(pairs, vec![("b", 2), ("a", 1)]);
        assert_eq!(counts.total(), 3);
        assert!(!counts.is_empty());
        assert!(counts.render_text().contains("b  2"));
    }

    #[test]
    fn diagnostic_json_round_trips_key_fields() {
        let d = Diagnostic::new(Severity::Error, "unwrap", "x.rs", 3, "msg \"quoted\"");
        let mut w = JsonWriter::new();
        d.write_json(&mut w);
        let json = w.finish();
        assert!(json.contains("\"rule\":\"unwrap\""));
        assert!(json.contains("\"line\":3"));
        assert!(json.contains("msg \\\"quoted\\\""));
    }
}
