#!/usr/bin/env bash
# Full offline CI pass: formatting, lints, repo audit, build, tests,
# bench smoke, and (when the toolchain provides them) miri + TSan gates.
# The workspace has zero external dependencies, so everything here runs
# without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> pilfill-audit lint (deny warnings, JSON report)"
cargo run -q -p xtask -- lint --deny-warnings --json > lint-report.json
cargo run -q -p xtask -- lint --deny-warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> bench smoke (writes BENCH_pr1.json)"
cargo run --release -p pilfill-bench --bin bench_json

# Optional soundness gates: run only when the host toolchain has the
# nightly components (offline containers usually don't; the GitHub
# workflow installs them and runs these for real).
if cargo +nightly miri --version >/dev/null 2>&1; then
  echo "==> miri (pilfill-geom, pilfill-solver)"
  cargo +nightly miri test -p pilfill-geom -p pilfill-solver
else
  echo "==> miri unavailable (skipping; CI runs it)"
fi

if [ -d "$(rustc +nightly --print sysroot 2>/dev/null)/lib/rustlib/src/rust/library" ]; then
  echo "==> ThreadSanitizer (FlowOutcome determinism)"
  RUSTFLAGS="-Zsanitizer=thread" \
    cargo +nightly test -Zbuild-std --target x86_64-unknown-linux-gnu \
    -p pilfill-core --lib parallel_run_is_bit_identical -- --test-threads 1
else
  echo "==> nightly rust-src unavailable (skipping TSan; CI runs it)"
fi

echo "CI OK"
