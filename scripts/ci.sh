#!/usr/bin/env bash
# Full offline CI pass: formatting, lints, repo audit, build, tests,
# bench smoke, and (when the toolchain provides them) miri + TSan gates.
# The workspace has zero external dependencies, so everything here runs
# without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> pilfill-audit lint (deny warnings, JSON report)"
cargo run -q -p xtask -- lint --deny-warnings --json > lint-report.json
cargo run -q -p xtask -- lint --deny-warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

# Concurrency gates. The bounded model checker explores the pool's
# protocol invariants (epoch publication, cursor claiming, slot merges,
# gate streaming, panic propagation) under a fixed seed and budget; its
# JSON report lands next to lint-report.json. The three concurrency
# audit rules (unsafe-no-safety-comment, atomic-ordering, layering)
# already gate above as part of the pilfill-audit lint step.
echo "==> pilfill-check model suite (bounded budget, JSON report)"
cargo run --release -q -p pilfill-check -- --out check-report.json

# The same engine driving the REAL WorkerPool through the cfg'd sync
# shim. A separate target dir keeps the --cfg flag from thrashing the
# main build cache.
echo "==> model-checked pool tests (cfg pilfill_check)"
RUSTFLAGS="--cfg pilfill_check" CARGO_TARGET_DIR=target/check \
  cargo test -q -p pilfill-exec --test model_pool

# Serve smoke: the daemon answers a cold upload, a warm by-hash repeat
# (byte-for-byte identical outcome blob), and a one-net edit riding the
# cached context through the rebuild path, then shuts down cleanly. A
# real gate — determinism of the serving layer is an invariant, not a
# perf number.
echo "==> serve smoke (unix socket: cold / warm-repeat / one-net-edit)"
serve_dir=$(mktemp -d)
serve_sock="$serve_dir/pilfill-ci.sock"
./target/release/pilfill synth --preset small --seed 33 --out "$serve_dir/smoke.pfl" >/dev/null
./target/release/pilfill serve --listen "unix:$serve_sock" --threads 2 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$serve_dir"' EXIT
request() {
  ./target/release/pilfill request "$serve_dir/smoke.pfl" \
    --connect "unix:$serve_sock" --window 8000 --r 2 --method greedy "$@"
}
out=$(request --dump "$serve_dir/cold.blob")
echo "$out" | grep -q "status cold" || { echo "expected a cold fill: $out"; exit 1; }
out=$(request --by-hash --dump "$serve_dir/warm.blob")
echo "$out" | grep -q "status warm" || { echo "expected a warm fill: $out"; exit 1; }
cmp "$serve_dir/cold.blob" "$serve_dir/warm.blob" ||
  { echo "warm reply must match cold byte-for-byte"; exit 1; }
out=$(request --edit dup-sink:0)
echo "$out" | grep -q "status rebuild-" || { echo "expected a rebuild: $out"; exit 1; }
./target/release/pilfill request --connect "unix:$serve_sock" --shutdown |
  grep -q "shutdown acknowledged" || { echo "shutdown not acknowledged"; exit 1; }
wait "$serve_pid"
[ ! -e "$serve_sock" ] || { echo "socket file not unlinked on shutdown"; exit 1; }
trap - EXIT
rm -rf "$serve_dir"

# Informational, non-blocking: a --quick bench run checks the harness
# end-to-end (including the sweep and serve-load flag paths) without
# pretending CI hardware produces comparable medians; the diff against
# the committed baseline is printed for the log but never fails the
# build.
echo "==> bench smoke (--quick --threads-sweep --serve-load, informational)"
cargo run --release -q -p pilfill-bench --bin bench_json -- \
  --quick --threads-sweep --serve-load --out BENCH_smoke.json ||
  echo "==> bench smoke failed — informational, not a gate"
# The quick report uses a smaller design, so it is never diffed against
# the committed full-size baselines; instead the committed reports are
# diffed against each other to surface the perf trajectory in the log.
# --allow-cross-host: the two baselines may have been recorded on
# different machines, and this diff is informational either way.
if [ -f BENCH_pr8.json ] && [ -f BENCH_pr9.json ]; then
  echo "==> committed baseline drift BENCH_pr8.json -> BENCH_pr9.json (informational)"
  ./scripts/bench_compare.sh --threshold 25 --allow-cross-host BENCH_pr8.json BENCH_pr9.json ||
    echo "==> bench drift above threshold — informational, not a gate"
fi
# Scaling floors from the committed sweep. check_scaling.sh itself
# downgrades to informational when the recording host had < 4 cores or
# the lane is wider than the host, so this is a real gate exactly where
# the numbers are meaningful.
if [ -f BENCH_pr9.json ]; then
  echo "==> multicore scaling check (BENCH_pr9.json)"
  ./scripts/check_scaling.sh BENCH_pr9.json
fi

# Optional soundness gates: run only when the host toolchain has the
# nightly components (offline containers usually don't; the GitHub
# workflow installs them and runs these for real).
if cargo +nightly miri --version >/dev/null 2>&1; then
  echo "==> miri (pilfill-geom, pilfill-solver)"
  cargo +nightly miri test -p pilfill-geom -p pilfill-solver
else
  echo "==> miri unavailable (skipping; CI runs it)"
fi

if [ -d "$(rustc +nightly --print sysroot 2>/dev/null)/lib/rustlib/src/rust/library" ]; then
  echo "==> ThreadSanitizer (FlowOutcome determinism)"
  RUSTFLAGS="-Zsanitizer=thread" \
    cargo +nightly test -Zbuild-std --target x86_64-unknown-linux-gnu \
    -p pilfill-core --lib parallel_run_is_bit_identical -- --test-threads 1
else
  echo "==> nightly rust-src unavailable (skipping TSan; CI runs it)"
fi

echo "CI OK"
