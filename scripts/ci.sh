#!/usr/bin/env bash
# Full offline CI pass: formatting, lints, build, tests, bench smoke.
# The workspace has zero external dependencies, so everything here runs
# without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> bench smoke (writes BENCH_pr1.json)"
cargo run --release -p pilfill-bench --bin bench_json

echo "CI OK"
