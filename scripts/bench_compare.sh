#!/usr/bin/env bash
# Compares two pilfill-bench reports (schema pilfill-bench/median_ns/v1)
# key by key and prints a diff table. A median_ns key regresses when its
# median grows by more than the threshold percentage; a scaling
# `speedup@N` key (permille, larger is better) regresses when it *shrinks*
# by more than the threshold. The exit status is the number of regressed
# keys (0 = clean), so callers can gate or ignore.
#
# usage: bench_compare.sh [--threshold PCT] [--allow-cross-host] BASE.json NEW.json
#
# The reports record `host_parallelism` (what available_parallelism saw
# when they were taken). Medians and especially speedups taken on
# different core counts are not comparable, so a mismatch REFUSES the
# comparison with exit status 3 before any key is diffed (the informational
# flag — distinct from a regression count, which only occurs after a
# completed comparison). Pass --allow-cross-host to compare anyway; the
# prominent warning is still printed.
#
# Keys present in only one report (new or retired benches) are listed in
# a separate "added/removed keys" section after the table and never count
# as regressions; their count is repeated on the final summary line so a
# renamed key can't scroll past unnoticed in a long CI log. `serve/*`
# keys only exist from PR 9 baselines on, so ones absent from the older
# report are tagged as explicitly skipped rather than "added". Only std
# tools (bash + awk) are used.
#
# Direction: median_ns keys regress when they GROW; `speedup@N`,
# `serve/rps` and `serve/warm_hit_ratio` are larger-is-better and
# regress when they SHRINK.
set -euo pipefail

usage() {
  echo "usage: $0 [--threshold PCT] [--allow-cross-host] BASE.json NEW.json" >&2
  exit 2
}

threshold=10
allow_cross_host=0
files=()
while [ $# -gt 0 ]; do
  case "$1" in
    --threshold)
      [ $# -ge 2 ] || usage
      threshold=$2
      shift 2
      ;;
    --allow-cross-host)
      allow_cross_host=1
      shift
      ;;
    -*) usage ;;
    *)
      files+=("$1")
      shift
      ;;
  esac
done
[ ${#files[@]} -eq 2 ] || usage
base=${files[0]}
new=${files[1]}
[ -f "$base" ] || { echo "no such file: $base" >&2; exit 2; }
[ -f "$new" ] || { echo "no such file: $new" >&2; exit 2; }

host_of() {
  awk -F': ' '/"host_parallelism"/ {
    val = $2
    gsub(/[^0-9]/, "", val)
    print val
    exit
  }' "$1"
}

base_host=$(host_of "$base")
new_host=$(host_of "$new")
if [ -n "$base_host" ] && [ -n "$new_host" ] && [ "$base_host" != "$new_host" ]; then
  {
    echo "================================================================"
    echo "WARNING: host_parallelism mismatch: $base recorded $base_host,"
    echo "$new recorded $new_host. Medians and speedup@N keys taken on"
    echo "different core counts are not comparable."
    echo "================================================================"
  } >&2
  if [ "$allow_cross_host" -ne 1 ]; then
    echo "refusing cross-host comparison (exit 3); pass --allow-cross-host to override" >&2
    exit 3
  fi
fi

# The reports are written one key per line by the in-repo JSON printer;
# metric keys always contain a slash (e.g. "flow/run_ilp2_t2"), which
# filters out schema/host metadata. The scaling section's speedup@N keys
# share the format and are told apart by name in the diff below.
extract() {
  awk -F'"' '/": [0-9]+,?$/ && $2 ~ /\// {
    val = $3
    gsub(/[^0-9]/, "", val)
    print $2, val
  }' "$1"
}

{ extract "$base" | sed 's/^/B /'; extract "$new" | sed 's/^/N /'; } |
  awk -v thr="$threshold" '
    $1 == "B" { base[$2] = $3; order[n++] = $2 }
    $1 == "N" { new[$2] = $3; if (!($2 in base)) order[n++] = $2 }
    END {
      printf "%-44s %14s %14s %9s\n", "key", "base", "new", "delta"
      bad = 0
      extra = 0
      for (i = 0; i < n; i++) {
        k = order[i]
        if (!(k in new)) {
          removed[extra] = k; tag[extra++] = "removed"
        } else if (!(k in base)) {
          removed[extra] = k; tag[extra++] = "added"
        } else {
          pct = base[k] > 0 ? 100.0 * (new[k] - base[k]) / base[k] : 0.0
          mark = ""
          if (k ~ /speedup@/ || k == "serve/rps" || k == "serve/warm_hit_ratio") {
            # Larger is better (permille speedups, request throughput,
            # cache hit ratio): a drop regresses.
            if (pct < -thr) { mark = " REGRESSED"; bad++ }
          } else if (pct > thr) { mark = " REGRESSED"; bad++ }
          printf "%-44s %14d %14d %+8.1f%%%s\n", k, base[k], new[k], pct, mark
        }
      }
      if (extra > 0) {
        printf "added/removed keys (never regressions):\n"
        for (i = 0; i < extra; i++) {
          k = removed[i]
          v = (tag[i] == "added") ? new[k] : base[k]
          note = tag[i]
          # serve/* keys only exist from PR 9 baselines on: their absence
          # from an older report is expected, not a bench change.
          if (tag[i] == "added" && k ~ /^serve\//)
            note = "skipped (no serve keys in base)"
          printf "  %-42s %14d  %s\n", k, v, note
        }
      }
      printf "threshold +/-%s%%: %d regression(s), %d added/removed key(s)\n", thr, bad, extra
      exit bad
    }
  '
