#!/usr/bin/env bash
# Judges the multicore scaling story of one pilfill-bench report: every
# `scaling/.../speedup@N` key (permille, 2000 = clean 2x over the 1-lane
# median) is checked against a floor — but only where the check is
# honest. On a host with fewer than 4 cores, or for lanes wider than the
# host, an oversubscribed sweep measures scheduling overhead rather than
# speedup, so those keys are reported informationally and never fail.
#
# usage: check_scaling.sh [--min-permille P] [--lane N] REPORT.json
#
# The floor P (default 1200 = +20% over 1 lane) applies to every lane
# N <= host_parallelism when host_parallelism >= 4. With --lane N only
# the speedup@N keys are judged (the CI sweep matrix gives each lane its
# own job); other lanes are not printed. The exit status is the number
# of thresholded lanes below the floor (0 = clean or purely
# informational). Only std tools (bash + awk) are used.
set -euo pipefail

usage() {
  echo "usage: $0 [--min-permille P] [--lane N] REPORT.json" >&2
  exit 2
}

min_permille=1200
only_lane=0
report=""
while [ $# -gt 0 ]; do
  case "$1" in
    --min-permille)
      [ $# -ge 2 ] || usage
      min_permille=$2
      shift 2
      ;;
    --lane)
      [ $# -ge 2 ] || usage
      only_lane=$2
      shift 2
      ;;
    -*) usage ;;
    *)
      [ -z "$report" ] || usage
      report=$1
      shift
      ;;
  esac
done
[ -n "$report" ] || usage
[ -f "$report" ] || { echo "no such file: $report" >&2; exit 2; }

awk -F'"' -v min="$min_permille" -v only="$only_lane" '
  BEGIN { n = 0; host = 0 }
  /"host_parallelism"/ {
    val = $0
    gsub(/[^0-9]/, "", val)
    host = val + 0
  }
  /": [0-9]+,?$/ && $2 ~ /speedup@/ {
    key = $2
    val = $3
    gsub(/[^0-9]/, "", val)
    lane = key
    sub(/.*speedup@/, "", lane)
    keys[n] = key; vals[n] = val + 0; lanes[n] = lane + 0; n++
  }
  END {
    if (n == 0) {
      print "no scaling/speedup@N keys found (run bench_json --threads-sweep)"
      exit 0
    }
    printf "host_parallelism = %d, floor = %d permille\n", host, min
    bad = 0
    for (i = 0; i < n; i++) {
      if (only > 0 && lanes[i] != only) continue
      if (host < 4 || lanes[i] > host) {
        printf "  %-44s %6d  informational (host too narrow for lane %d)\n", \
          keys[i], vals[i], lanes[i]
      } else if (vals[i] < min) {
        printf "  %-44s %6d  BELOW FLOOR %d\n", keys[i], vals[i], min
        bad++
      } else {
        printf "  %-44s %6d  ok\n", keys[i], vals[i]
      }
    }
    printf "%d lane(s) below floor\n", bad
    exit bad
  }
' "$report"
