//! # pil-fill
//!
//! Facade crate for the PIL-Fill workspace: re-exports every subsystem so
//! downstream users can depend on a single crate.
//!
//! See the individual crates for details: [`geom`], [`layout`],
//! [`density`], [`solver`], [`rc`], [`core`], [`stream`], [`viz`].

pub use pilfill_core as core;
pub use pilfill_density as density;
pub use pilfill_geom as geom;
pub use pilfill_layout as layout;
pub use pilfill_rc as rc;
pub use pilfill_solver as solver;
pub use pilfill_stream as stream;
pub use pilfill_viz as viz;
