//! Quickstart: synthesize a layout, run timing-aware fill, inspect the
//! result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pil_fill::core::flow::{run_flow, FlowConfig};
use pil_fill::core::methods::{GreedyFill, IlpTwo, NormalFill};
use pil_fill::layout::stats::design_stats;
use pil_fill::layout::synth::{synthesize, SynthConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A routed design. Real users would parse one from the text format
    //    (`Design::from_text`) or build one with `DesignBuilder`; here we
    //    synthesize a small testcase.
    let design = synthesize(&SynthConfig::small_test(42));
    let stats = design_stats(&design);
    println!(
        "design `{}`: {} nets, {} segments, {:.1} um of wire",
        design.name,
        stats.nets,
        stats.segments,
        stats.wirelength as f64 / 1_000.0
    );

    // 2. Configure the flow: 8 um density windows, r = 2 dissection.
    let config = FlowConfig::new(8_000, 2)?;

    // 3. Run the density-only baseline and two PIL-Fill methods.
    for method in [
        &NormalFill as &dyn pil_fill::core::methods::FillMethod,
        &GreedyFill,
        &IlpTwo,
    ] {
        let outcome = run_flow(&design, &config, method)?;
        println!(
            "{:>7}: {} features, delay impact {:.3} fs (weighted {:.3} fs), \
             min window density {:.3} -> {:.3}",
            outcome.method,
            outcome.placed_features,
            outcome.impact.total_delay * 1e15,
            outcome.impact.weighted_delay * 1e15,
            outcome.density_before.min_window_density,
            outcome.density_after.min_window_density,
        );
    }
    println!("\nAll methods reach the same density; ILP-II pays the least delay.");
    Ok(())
}
