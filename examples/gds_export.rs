//! Full tool-style pipeline: synthesize, fill, export GDSII, read it back
//! and verify the stream — the post-GDSII insertion flow the paper's
//! introduction describes.
//!
//! ```sh
//! cargo run --release --example gds_export
//! ```

use pil_fill::core::flow::{run_flow, FlowConfig};
use pil_fill::core::methods::IlpTwo;
use pil_fill::layout::synth::{synthesize, SynthConfig};
use pil_fill::stream::{read_gds, write_gds, FILL_DATATYPE};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = synthesize(&SynthConfig::small_test(3));
    let config = FlowConfig::new(8_000, 2)?;
    let outcome = run_flow(&design, &config, &IlpTwo)?;
    println!(
        "placed {} fill features with {:.4} fs delay impact",
        outcome.placed_features,
        outcome.impact.total_delay * 1e15
    );

    // Export drawn metal + fill to a GDSII stream.
    let bytes = write_gds(&design, &outcome.features);
    let path = std::env::temp_dir().join("pilfill_demo.gds");
    std::fs::write(&path, &bytes)?;
    println!("wrote {} ({} bytes)", path.display(), bytes.len());

    // Read back and verify.
    let lib = read_gds(&bytes)?;
    let fills = lib.boundaries_with_datatype(FILL_DATATYPE);
    let drawn = lib.boundaries.len() - fills.len();
    println!(
        "read back library `{}` / structure `{}`: {} drawn shapes, {} fill shapes",
        lib.name,
        lib.structure,
        drawn,
        fills.len()
    );
    assert_eq!(fills.len() as u64, outcome.placed_features);
    assert!(fills.iter().all(|b| b.is_rect()));

    // Fill features must keep the buffer distance from drawn metal.
    let buffer = design.rules.buffer;
    for fill in &fills {
        let grown = fill.bbox().grown(buffer);
        for b in &lib.boundaries {
            if b.datatype != FILL_DATATYPE && b.layer == 0 {
                assert!(
                    !grown.overlaps(&b.bbox()),
                    "fill at {} violates buffer to drawn metal at {}",
                    fill.bbox(),
                    b.bbox()
                );
            }
        }
    }
    println!("verified: every fill shape keeps the {buffer} dbu buffer distance");
    Ok(())
}
