//! Timing-aware fill on a hand-built design: shows how entry resistance
//! and downstream-sink weights steer PIL-Fill away from timing-critical
//! wire, and how to inspect per-net delay impact.
//!
//! ```sh
//! cargo run --release --example timing_aware_fill
//! ```

use pil_fill::core::flow::{run_flow, FlowConfig};
use pil_fill::core::methods::{IlpTwo, NormalFill};
use pil_fill::geom::{Dir, Point, Rect};
use pil_fill::layout::{Design, DesignBuilder};

/// Two parallel long nets: `critical` drives four sinks through a long
/// trunk (heavy weight, large downstream resistance), `relaxed` is a short
/// point-to-point wire. Fill must go *somewhere* between them to meet
/// density; PIL-Fill should lean towards the relaxed net's neighborhood
/// and the upstream (low-resistance) end of the critical net.
fn build_design() -> Result<Design, Box<dyn std::error::Error>> {
    let die = Rect::new(0, 0, 40_000, 40_000);
    let mut b = DesignBuilder::new("timing-demo", die)
        .layer("m3", Dir::Horizontal)
        .layer("m2", Dir::Vertical);

    // The critical net: source far left, trunk crossing the die, branches
    // with sinks (weights accumulate on the trunk).
    b = b
        .net("critical", Point::new(500, 20_000))
        .segment(
            "m3",
            Point::new(500, 20_000),
            Point::new(12_000, 20_000),
            280,
        )
        .segment(
            "m3",
            Point::new(12_000, 20_000),
            Point::new(25_000, 20_000),
            280,
        )
        .segment(
            "m3",
            Point::new(25_000, 20_000),
            Point::new(38_000, 20_000),
            280,
        )
        .sink(Point::new(38_000, 20_000))
        .segment(
            "m2",
            Point::new(12_000, 20_000),
            Point::new(12_000, 26_000),
            280,
        )
        .segment(
            "m3",
            Point::new(12_000, 26_000),
            Point::new(20_000, 26_000),
            280,
        )
        .sink(Point::new(20_000, 26_000))
        .segment(
            "m2",
            Point::new(25_000, 20_000),
            Point::new(25_000, 14_000),
            280,
        )
        .segment(
            "m3",
            Point::new(25_000, 14_000),
            Point::new(33_000, 14_000),
            280,
        )
        .sink(Point::new(33_000, 14_000));

    // A relaxed neighbour just below the critical trunk.
    b = b
        .net("relaxed", Point::new(500, 18_500))
        .segment(
            "m3",
            Point::new(500, 18_500),
            Point::new(30_000, 18_500),
            280,
        )
        .sink(Point::new(30_000, 18_500));

    Ok(b.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = build_design()?;
    let config = FlowConfig::new(10_000, 2)?;

    println!("net inventory:");
    for (i, net) in design.nets.iter().enumerate() {
        println!(
            "  [{i}] {:<9} {} segment(s), {} sink(s)",
            net.name,
            net.segments.len(),
            net.sinks.len()
        );
    }

    for method in [
        &NormalFill as &dyn pil_fill::core::methods::FillMethod,
        &IlpTwo,
    ] {
        let outcome = run_flow(&design, &config, method)?;
        println!(
            "\n{}: {} features placed, total delay impact {:.4} fs",
            outcome.method,
            outcome.placed_features,
            outcome.impact.total_delay * 1e15
        );
        for (net, delay) in outcome.impact.worst_nets(5) {
            println!("    {:<9} +{:.4} fs", design.nets[net.0].name, delay * 1e15);
        }
    }
    println!(
        "\nILP-II shifts coupling away from the heavily-weighted critical\n\
         net and towards cheap space, at identical fill density."
    );
    Ok(())
}
