//! Density-analysis walkthrough: the CMP-uniformity side of fill synthesis.
//!
//! Computes the fixed r-dissection window densities of a design before and
//! after fill, prints a coarse density heat map, and compares the exact
//! Min-Var LP budgeter with the scalable Monte-Carlo one.
//!
//! ```sh
//! cargo run --release --example density_uniformity
//! ```

use pil_fill::core::flow::{run_flow, FlowConfig};
use pil_fill::core::methods::NormalFill;
use pil_fill::density::{lp_budget, montecarlo_budget, DensityMap, FixedDissection};
use pil_fill::layout::synth::{synthesize, SynthConfig};
use pil_fill::layout::LayerId;

fn heat_map(map: &DensityMap) {
    let grid = map.dissection().tiles();
    for iy in (0..grid.ny()).rev() {
        let mut line = String::new();
        for ix in 0..grid.nx() {
            let density = map.tile_area((ix, iy)) as f64 / grid.cell_rect((ix, iy)).area() as f64;
            let glyph = match (density * 10.0) as u32 {
                0 => ' ',
                1 => '.',
                2 => ':',
                3 => '+',
                4 => '*',
                _ => '#',
            };
            line.push(glyph);
        }
        println!("  |{line}|");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = synthesize(&SynthConfig::small_test(7));
    let dissection = FixedDissection::new(design.die, 8_000, 4)?;
    let map = DensityMap::compute(&design, LayerId(0), &dissection);

    let before = map.analyze();
    println!("drawn metal density per tile (darker = denser):");
    heat_map(&map);
    println!(
        "window density: min {:.3}, max {:.3}, variation {:.3}\n",
        before.min_window_density, before.max_window_density, before.variation
    );

    // Compare the two budgeting implementations on this small grid.
    let slack = vec![60u32; dissection.num_tiles()];
    let fa = design.rules.feature_area();
    let lp = lp_budget(&map, &slack, fa, 0.33)?;
    let mc = montecarlo_budget(&map, &slack, fa, 0.33)?;
    println!(
        "fill budget: exact LP wants {} features, Monte-Carlo wants {}",
        lp.total(),
        mc.total()
    );

    // Run the full flow (Normal placement is enough for density purposes).
    let config = FlowConfig::new(8_000, 4)?;
    let outcome = run_flow(&design, &config, &NormalFill)?;
    // Rebuild the post-fill map from the placed features.
    let mut after_map = map.clone();
    for f in &outcome.features {
        if let Some(cell) = dissection.tiles().cell_at(f.x, f.y) {
            after_map.add_tile_area(cell, fa);
        }
    }
    println!("\nafter fill ({} features):", outcome.placed_features);
    heat_map(&after_map);
    let after = after_map.analyze();
    println!(
        "window density: min {:.3}, max {:.3}, variation {:.3}",
        after.min_window_density, after.max_window_density, after.variation
    );
    println!(
        "\nvariation reduced by {:.0}%",
        100.0 * (before.variation - after.variation) / before.variation
    );
    Ok(())
}
