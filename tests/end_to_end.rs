//! Cross-crate integration tests: the full PIL-Fill pipeline from layout
//! synthesis through placement, evaluation and GDSII export.

use pil_fill::core::flow::{run_flow, FlowConfig, FlowContext};
use pil_fill::core::methods::{DpExact, FillMethod, GreedyFill, IlpOne, IlpTwo, NormalFill};
use pil_fill::layout::synth::{synthesize, SynthConfig};
use pil_fill::layout::Design;
use pil_fill::stream::{read_gds, write_gds, FILL_DATATYPE};

fn design() -> Design {
    synthesize(&SynthConfig::small_test(99))
}

fn config() -> FlowConfig {
    FlowConfig::new(8_000, 2).expect("valid config")
}

#[test]
fn full_flow_all_methods_share_density_and_budget() {
    let d = design();
    let cfg = config();
    let ctx = FlowContext::build(&d, &cfg).expect("context");
    let methods: Vec<&dyn FillMethod> = vec![&NormalFill, &IlpOne, &IlpTwo, &GreedyFill, &DpExact];
    let outcomes: Vec<_> = methods
        .iter()
        .map(|m| ctx.run(&cfg, *m).expect("flow"))
        .collect();
    let reference = &outcomes[0];
    assert!(reference.budget_total > 0);
    for o in &outcomes {
        assert_eq!(o.placed_features, reference.placed_features);
        assert_eq!(o.shortfall, 0);
        assert_eq!(o.impact.unlocated_features, 0);
        assert_eq!(
            o.density_after.min_window_density, reference.density_after.min_window_density,
            "{}: density quality must be identical",
            o.method
        );
    }
}

#[test]
fn method_quality_ordering_holds_end_to_end() {
    let d = design();
    let cfg = config();
    let ctx = FlowContext::build(&d, &cfg).expect("context");
    let tau = |m: &dyn FillMethod| ctx.run(&cfg, m).expect("flow").impact.total_delay;
    let normal = tau(&NormalFill);
    let greedy = tau(&GreedyFill);
    let ilp2 = tau(&IlpTwo);
    let dp = tau(&DpExact);
    assert!(
        ilp2 <= greedy,
        "ILP-II ({ilp2}) must beat Greedy ({greedy})"
    );
    assert!(
        greedy < normal,
        "Greedy ({greedy}) must beat Normal ({normal})"
    );
    // ILP-II solves the same model DP solves exactly.
    assert!((ilp2 - dp).abs() <= 1e-6 * dp.max(1e-30), "ILP-II vs DP");
}

#[test]
fn text_format_round_trip_preserves_flow_results() {
    let d = design();
    let text = d.to_text();
    let d2 = Design::from_text(&text).expect("parse");
    let cfg = config();
    let a = run_flow(&d, &cfg, &GreedyFill).expect("flow a");
    let b = run_flow(&d2, &cfg, &GreedyFill).expect("flow b");
    assert_eq!(a.features, b.features);
    assert_eq!(a.impact.total_delay, b.impact.total_delay);
}

#[test]
fn gds_export_round_trips_fill_count_and_respects_buffers() {
    let d = design();
    let outcome = run_flow(&d, &config(), &IlpTwo).expect("flow");
    let bytes = write_gds(&d, &outcome.features);
    let lib = read_gds(&bytes).expect("read back");
    let fills = lib.boundaries_with_datatype(FILL_DATATYPE);
    assert_eq!(fills.len() as u64, outcome.placed_features);
    // No fill shape may come within the buffer distance of drawn metal.
    let keepouts: Vec<_> = lib
        .boundaries
        .iter()
        .filter(|b| b.datatype == 0 && b.layer == 0)
        .map(|b| b.bbox().grown(d.rules.buffer))
        .collect();
    for f in &fills {
        let rect = f.bbox();
        for k in &keepouts {
            assert!(!rect.overlaps(k), "fill {rect} too close to metal");
        }
    }
    // Fill shapes must not overlap each other either.
    for (i, a) in fills.iter().enumerate() {
        for b in &fills[i + 1..] {
            assert!(!a.bbox().overlaps(&b.bbox()), "fill overlap");
        }
    }
}

#[test]
fn deterministic_across_runs_and_thread_counts() {
    let d = design();
    let cfg = config();
    let ctx = FlowContext::build(&d, &cfg).expect("context");
    let a = ctx.run(&cfg, &NormalFill).expect("seq");
    let b = ctx.run_parallel(&cfg, &NormalFill, 3).expect("par3");
    let c = ctx.run_parallel(&cfg, &NormalFill, 7).expect("par7");
    assert_eq!(a.features, b.features);
    assert_eq!(b.features, c.features);
}

#[test]
fn fill_features_stay_on_die_and_clear_of_wires() {
    use pil_fill::layout::LayerId;
    let d = design();
    let outcome = run_flow(&d, &config(), &NormalFill).expect("flow");
    let size = d.rules.feature_size;
    let wires: Vec<_> = d
        .segments_on_layer(LayerId(0))
        .map(|(_, _, s)| s.rect())
        .collect();
    for f in &outcome.features {
        let rect = f.rect(size);
        assert!(d.die.contains_rect(&rect), "fill off die: {rect}");
        for w in &wires {
            assert!(
                !rect.overlaps(&w.grown(d.rules.buffer)),
                "fill at {rect} violates buffer to wire {w}"
            );
        }
    }
}

#[test]
fn weighted_flow_reduces_weighted_metric() {
    let d = synthesize(&SynthConfig::small_test(5));
    let mut cfg = config();
    let ctx = FlowContext::build(&d, &cfg).expect("context");
    cfg.weighted = false;
    let unweighted = ctx.run(&cfg, &IlpTwo).expect("flow");
    cfg.weighted = true;
    let weighted = ctx.run(&cfg, &IlpTwo).expect("flow");
    assert!(weighted.impact.weighted_delay <= unweighted.impact.weighted_delay * (1.0 + 1e-9));
}
