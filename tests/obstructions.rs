//! Integration tests for obstruction (macro blockage) handling across the
//! stack: text format, density accounting, fill avoidance, GDSII export
//! and rendering.

use pil_fill::core::flow::{run_flow, FlowConfig};
use pil_fill::core::methods::{GreedyFill, IlpTwo};
use pil_fill::density::{DensityMap, FixedDissection};
use pil_fill::geom::{Dir, Point, Rect};
use pil_fill::layout::{Design, DesignBuilder, LayerId};
use pil_fill::viz::{LayoutView, Theme};

fn design_with_macro() -> Design {
    DesignBuilder::new("obs-demo", Rect::new(0, 0, 24_000, 24_000))
        .layer("m3", Dir::Horizontal)
        .obstruction("m3", Rect::new(9_000, 9_000, 15_000, 15_000))
        .net("a", Point::new(300, 4_000))
        .segment("m3", Point::new(300, 4_000), Point::new(23_000, 4_000), 280)
        .sink(Point::new(23_000, 4_000))
        .net("b", Point::new(300, 20_000))
        .segment(
            "m3",
            Point::new(300, 20_000),
            Point::new(23_000, 20_000),
            280,
        )
        .sink(Point::new(23_000, 20_000))
        .build()
        .expect("valid design")
}

#[test]
fn obstruction_round_trips_text_format() {
    let d = design_with_macro();
    let d2 = Design::from_text(&d.to_text()).expect("parse back");
    assert_eq!(d, d2);
    assert_eq!(d2.obstructions.len(), 1);
}

#[test]
fn obstruction_counts_toward_density() {
    let d = design_with_macro();
    let dis = FixedDissection::new(d.die, 12_000, 2).expect("dissection");
    let map = DensityMap::compute(&d, LayerId(0), &dis);
    // The macro sits across the center tiles; its 6000x6000 area must be in
    // the map.
    let wire_area: i64 = d
        .segments_on_layer(LayerId(0))
        .map(|(_, _, s)| s.rect().area())
        .sum();
    assert_eq!(map.total_area(), wire_area + 6_000 * 6_000);
}

#[test]
fn fill_keeps_buffer_distance_from_macro() {
    let d = design_with_macro();
    let cfg = FlowConfig::new(12_000, 2).expect("config");
    let outcome = run_flow(&d, &cfg, &GreedyFill).expect("flow");
    assert!(outcome.placed_features > 0);
    let keepout = d.obstructions[0].rect.grown(d.rules.buffer);
    for f in &outcome.features {
        assert!(
            !f.rect(d.rules.feature_size).overlaps(&keepout),
            "fill at ({}, {}) inside the macro keepout",
            f.x,
            f.y
        );
    }
}

#[test]
fn coupling_to_macro_charges_only_the_real_net() {
    // Fill between wire `a` and the macro couples them; the macro has no
    // net, so only net a's delay may grow from those columns.
    let d = design_with_macro();
    let cfg = FlowConfig::new(12_000, 2).expect("config");
    let outcome = run_flow(&d, &cfg, &IlpTwo).expect("flow");
    // Per-net vectors must be sized to the real nets only.
    assert_eq!(outcome.impact.per_net_delay.len(), d.nets.len());
    assert!(outcome.impact.total_delay >= 0.0);
}

#[test]
fn gds_and_svg_include_the_macro() {
    let d = design_with_macro();
    let lib =
        pil_fill::stream::read_gds(&pil_fill::stream::write_gds(&d, &[])).expect("gds round trip");
    let drawn = lib.boundaries_with_datatype(0);
    let total_segments: usize = d.nets.iter().map(|n| n.segments.len()).sum();
    assert_eq!(drawn.len(), total_segments + d.obstructions.len());

    let svg = LayoutView::new(&d).render(&Theme::default());
    assert!(svg.contains(r#"class="obs""#));
}

#[test]
fn synthetic_testcases_carry_macros() {
    use pil_fill::layout::synth::{synthesize, SynthConfig};
    let t1 = synthesize(&SynthConfig::t1());
    assert!(!t1.obstructions.is_empty(), "T1 should place macros");
    // Wires keep clear of macros.
    for o in &t1.obstructions {
        for (_, _, seg) in t1.segments_on_layer(LayerId(0)) {
            assert!(
                !seg.rect().overlaps(&o.rect),
                "wire {} overlaps macro {}",
                seg.rect(),
                o.rect
            );
        }
    }
}
