//! End-to-end randomized tests: the full flow on randomly generated
//! designs must satisfy its contracts — exact budgets, DRC cleanliness,
//! determinism, and the optimizer not losing to random placement. Driven
//! by the in-repo seeded PRNG so every run explores the same cases.

use pil_fill::core::flow::{FlowConfig, FlowContext};
use pil_fill::core::methods::{GreedyFill, IlpTwo, NormalFill};
use pil_fill::core::{check_fill, SlackColumnDef};
use pil_fill::layout::synth::{synthesize, SynthConfig};
use pilfill_prng::rngs::StdRng;
use pilfill_prng::{Rng, SeedableRng};

fn rand_case(rng: &mut StdRng) -> (SynthConfig, i64, usize) {
    let seed = rng.gen_range(0u64..5_000);
    let cfg = SynthConfig {
        name: format!("flowprop-{seed}"),
        die_size: 24_000,
        seed,
        num_buses: rng.gen_range(1usize..3),
        bus_bits: rng.gen_range(2usize..4),
        num_tree_nets: rng.gen_range(2usize..8),
        num_local_nets: rng.gen_range(4usize..14),
        wire_width: 280,
        wire_space: 280,
        hotspot_fraction: 0.5,
        num_macros: rng.gen_range(0usize..3),
        tech: Default::default(),
        rules: Default::default(),
    };
    let (window, r) = match rng.gen_range(0u32..3) {
        0 => (8_000i64, 2usize),
        1 => (8_000, 4),
        _ => (6_000, 2),
    };
    (cfg, window, r)
}

#[test]
fn flow_contracts_hold_on_random_designs() {
    let mut rng = StdRng::seed_from_u64(0xF1_0001);
    for _ in 0..20 {
        let (synth, window, r) = rand_case(&mut rng);
        let design = synthesize(&synth);
        let config = FlowConfig::new(window, r).expect("config");
        let ctx = FlowContext::build(&design, &config).expect("context");

        let normal = ctx.run(&config, &NormalFill).expect("normal");
        let greedy = ctx.run(&config, &GreedyFill).expect("greedy");
        let ilp2 = ctx.run_parallel(&config, &IlpTwo, 4).expect("ilp2");

        for outcome in [&normal, &greedy, &ilp2] {
            // Budget contract (definition III never falls short).
            assert_eq!(outcome.placed_features, outcome.budget_total);
            assert_eq!(outcome.shortfall, 0);
            assert_eq!(outcome.impact.unlocated_features, 0);
            // DRC contract.
            let report = check_fill(&design, config.layer, &outcome.features);
            assert!(
                report.is_clean(),
                "{}: {:?}",
                outcome.method,
                &report.violations[..report.violations.len().min(3)]
            );
            // Density bound contract.
            assert!(
                outcome.density_after.max_window_density
                    <= config
                        .max_density
                        .max(outcome.density_before.max_window_density)
                        + 1e-9
            );
        }

        // Identical density quality across methods.
        assert_eq!(
            normal.density_after.min_window_density,
            ilp2.density_after.min_window_density
        );

        // The optimizer never loses to random placement (a strict win is
        // not guaranteed on degenerate cases with trivial budgets).
        if ilp2.budget_total > 50 {
            assert!(
                ilp2.impact.total_delay <= normal.impact.total_delay + 1e-24,
                "ilp2 {} vs normal {}",
                ilp2.impact.total_delay,
                normal.impact.total_delay
            );
        }

        // Determinism across thread counts.
        let again = ctx.run(&config, &IlpTwo).expect("ilp2 again");
        assert_eq!(again.features, ilp2.features);
    }
}

#[test]
fn definitions_capacity_ordering_holds() {
    let mut rng = StdRng::seed_from_u64(0xF1_0002);
    for _ in 0..12 {
        let (synth, window, r) = rand_case(&mut rng);
        let design = synthesize(&synth);
        let mut config = FlowConfig::new(window, r).expect("config");
        let mut placed = Vec::new();
        for def in [
            SlackColumnDef::One,
            SlackColumnDef::Two,
            SlackColumnDef::Three,
        ] {
            config.def = def;
            let ctx = FlowContext::build(&design, &config).expect("context");
            let o = ctx.run(&config, &GreedyFill).expect("run");
            placed.push(o.placed_features);
        }
        // I places no more than II; III always places the full budget.
        assert!(
            placed[0] <= placed[1] + 8,
            "I {} vs II {}",
            placed[0],
            placed[1]
        );
        assert!(placed[2] >= placed[0]);
    }
}
