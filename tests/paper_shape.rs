//! "Paper shape" integration tests: the qualitative claims of the paper's
//! evaluation must hold on small testcases — who wins, where the
//! crossovers fall — independent of absolute magnitudes.

use pil_fill::core::flow::{FlowConfig, FlowContext};
use pil_fill::core::methods::{FillMethod, GreedyFill, IlpOne, IlpTwo, NormalFill};
use pil_fill::core::SlackColumnDef;
use pil_fill::layout::synth::{synthesize, SynthConfig};

fn medium_design() -> pil_fill::layout::Design {
    let mut cfg = SynthConfig::small_test(31);
    cfg.die_size = 48_000;
    cfg.num_buses = 3;
    cfg.bus_bits = 4;
    cfg.num_tree_nets = 14;
    cfg.num_local_nets = 30;
    synthesize(&cfg)
}

#[test]
fn ilp2_wins_and_normal_loses_across_dissections() {
    let d = medium_design();
    for (window, r) in [(16_000i64, 2usize), (16_000, 4), (12_000, 2)] {
        let cfg = FlowConfig::new(window, r).expect("config");
        let ctx = FlowContext::build(&d, &cfg).expect("context");
        let tau = |m: &dyn FillMethod| ctx.run(&cfg, m).expect("flow").impact.total_delay;
        let normal = tau(&NormalFill);
        let ilp1 = tau(&IlpOne);
        let ilp2 = tau(&IlpTwo);
        let greedy = tau(&GreedyFill);
        assert!(
            ilp2 <= ilp1 && ilp2 <= greedy && ilp2 <= normal,
            "W={window} r={r}: ILP-II must win ({ilp2} vs {ilp1}/{greedy}/{normal})"
        );
        assert!(
            normal >= greedy,
            "W={window} r={r}: Normal must not beat Greedy"
        );
    }
}

#[test]
fn improvement_shrinks_with_finer_dissection() {
    // Paper Sec. 6: fine-grained dissections split slack columns across
    // independently-solved tiles, eroding the optimizers' advantage.
    let d = medium_design();
    let mut reductions = Vec::new();
    for r in [1usize, 4, 8] {
        let cfg = FlowConfig::new(16_000, r).expect("config");
        let ctx = FlowContext::build(&d, &cfg).expect("context");
        let normal = ctx.run(&cfg, &NormalFill).expect("flow").impact.total_delay;
        let ilp2 = ctx.run(&cfg, &IlpTwo).expect("flow").impact.total_delay;
        reductions.push((normal - ilp2) / normal);
    }
    assert!(
        reductions[0] > reductions[2],
        "coarse dissection must benefit more: {reductions:?}"
    );
}

#[test]
fn slack_definition_quality_ordering() {
    // Paper Sec. 5.1: III most accurate, II places everything but
    // mis-attributes, I runs out of room.
    let d = medium_design();
    let mut outcomes = Vec::new();
    for def in [
        SlackColumnDef::One,
        SlackColumnDef::Two,
        SlackColumnDef::Three,
    ] {
        let mut cfg = FlowConfig::new(16_000, 2).expect("config");
        cfg.def = def;
        let ctx = FlowContext::build(&d, &cfg).expect("context");
        outcomes.push((def, ctx.run(&cfg, &IlpTwo).expect("flow")));
    }
    let (_, ref one) = outcomes[0];
    let (_, ref two) = outcomes[1];
    let (_, ref three) = outcomes[2];
    assert!(one.shortfall > 0, "definition I must run out of capacity");
    assert_eq!(two.shortfall, 0);
    assert_eq!(three.shortfall, 0);
    assert!(
        three.impact.total_delay <= two.impact.total_delay,
        "III ({}) must not lose to II ({})",
        three.impact.total_delay,
        two.impact.total_delay
    );
}

#[test]
fn ilp2_runtime_dominates_other_methods() {
    // Paper Tables 1-2: ILP-II has by far the largest CPU column.
    let d = medium_design();
    let cfg = FlowConfig::new(16_000, 2).expect("config");
    let ctx = FlowContext::build(&d, &cfg).expect("context");
    let time = |m: &dyn FillMethod| ctx.run(&cfg, m).expect("flow").solve_time;
    let ilp2 = time(&IlpTwo);
    let greedy = time(&GreedyFill);
    let normal = time(&NormalFill);
    assert!(
        ilp2 > greedy,
        "ILP-II ({ilp2:?}) slower than Greedy ({greedy:?})"
    );
    assert!(
        ilp2 > normal,
        "ILP-II ({ilp2:?}) slower than Normal ({normal:?})"
    );
}
